//! Properties of the live (unknown-length) streaming path.
//!
//! Two claims the module docs of `online.rs` make but PR 3 never pinned:
//!
//! 1. **Tail-only divergence.** A live session that learns the length
//!    only at `finish` matches the offline schedule everywhere except
//!    possibly the final `H − 1` pictures: decision `i` consults the
//!    lookahead `[i, i + H)`, so every `i ≤ n − H` sees pictures only —
//!    no end-of-stream estimates — and the divergent suffix has at most
//!    `H − 1` entries.
//! 2. **Theorem 1 on the tail.** Whatever the tail does, the delay bound
//!    and continuous service hold for the whole live schedule — Theorem 1
//!    needs exact sizes only for `S_i` itself, never for the lookahead.
//!
//! Plus the PR 5 memory contract: a live session prunes its decided
//! prefix (`SizeEstimator::history_window`), stays bit-identical to the
//! full-history naive reference, and retains O(H + N + K + D/τ) sizes no
//! matter how long it runs.

use proptest::prelude::*;
use smooth_core::reference::{smooth_live_reference, ReferencePatternEstimator};
use smooth_core::{
    check_theorem1, prunable_prefix, smooth, LiveCursor, OnlineSmoother, RateSelection,
    SmootherParams, SmoothingResult,
};
use smooth_mpeg::{GopPattern, Resolution};
use smooth_trace::VideoTrace;

const TAU: f64 = 1.0 / 30.0;

fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    prop_oneof![
        Just((3usize, 9usize)),
        Just((2, 6)),
        Just((3, 12)),
        Just((1, 5)),
        Just((1, 1)),
        Just((2, 2)),
    ]
    .prop_map(|(m, n)| GopPattern::new(m, n).expect("regular pattern"))
}

fn arb_trace(max_len: usize) -> impl Strategy<Value = VideoTrace> {
    (arb_pattern(), 1usize..max_len)
        .prop_flat_map(|(pattern, len)| {
            (
                Just(pattern),
                proptest::collection::vec(1_000u64..1_000_000, len),
            )
        })
        .prop_map(|(pattern, sizes)| {
            VideoTrace::new("prop", pattern, Resolution::VGA, 30.0, sizes).expect("positive sizes")
        })
}

fn arb_params() -> impl Strategy<Value = SmootherParams> {
    (1usize..=5, 1usize..=40, 0.0f64..0.4).prop_map(|(k, h, extra_slack)| {
        let d = (k as f64 + 1.0) * TAU + extra_slack;
        SmootherParams::new(d, k, h, TAU).expect("feasible by construction")
    })
}

/// Streams the trace through a live smoother (length unknown until
/// `finish`), returning the schedule and the peak retained-history size.
fn run_live(trace: &VideoTrace, params: SmootherParams) -> (SmoothingResult, usize) {
    let mut online = OnlineSmoother::new(params, trace.pattern);
    let mut schedule = Vec::with_capacity(trace.len());
    let mut max_retained = 0;
    for &s in &trace.sizes {
        schedule.extend(online.push(s));
        max_retained = max_retained.max(online.retained());
    }
    schedule.extend(online.finish());
    (SmoothingResult { params, schedule }, max_retained)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Live vs offline: bit-identical on every picture except possibly
    /// the final `H − 1`.
    #[test]
    fn live_diverges_only_in_final_h_minus_1(
        trace in arb_trace(150),
        params in arb_params(),
    ) {
        let offline = smooth(&trace, params);
        let (live, _) = run_live(&trace, params);
        let n = trace.len();
        prop_assert_eq!(live.schedule.len(), n);
        let stable = n.saturating_sub(params.h.saturating_sub(1));
        for i in 0..stable {
            prop_assert_eq!(
                &live.schedule[i],
                &offline.schedule[i],
                "divergence at {} of {} (H = {})",
                i, n, params.h
            );
        }
    }

    /// Theorem 1 (delay bound, continuous service, rate-change cadence)
    /// holds for the live schedule, tail included.
    #[test]
    fn live_tail_satisfies_theorem1(
        trace in arb_trace(150),
        params in arb_params(),
    ) {
        let (live, _) = run_live(&trace, params);
        let report = check_theorem1(&live);
        prop_assert!(report.holds(), "{:?}", report);
    }

    /// History compaction is invisible: the pruning live smoother equals
    /// the full-history naive reference bit for bit, on traces long
    /// enough to force many prune steps, while the retained slice stays
    /// bounded by the live-session constant (Theorem 1 bounds the
    /// undecided backlog by max(⌈D/τ⌉, K); add the estimator window 2N,
    /// the lookahead reach H, and pattern-alignment slop).
    #[test]
    fn compaction_is_bit_identical_and_bounded(
        trace in arb_trace(600),
        params in arb_params(),
    ) {
        let (live, max_retained) = run_live(&trace, params);
        let walk = ReferencePatternEstimator::default();
        let reference = smooth_live_reference(&trace, params, &walk, RateSelection::Basic);
        prop_assert_eq!(live.schedule, reference.schedule);

        // Undecided backlog ≤ ⌈D/τ⌉ + K (Theorem 1); the prune cut lags
        // the decided front by another backlog + 2N (estimator window)
        // + N (alignment); lazy compaction doubles the whole thing.
        let n = trace.pattern.n();
        let backlog = (params.delay_bound / params.tau).ceil() as usize + params.k;
        let bound = 4 * backlog + 8 * n + 32;
        prop_assert!(
            max_retained <= bound,
            "retained {} exceeds bound {}", max_retained, bound
        );
    }

    /// `prunable_prefix` never cuts into state a future decision reads:
    /// pattern-aligned, at most `decided`, and leaves the declared
    /// estimator window intact below the watermark.
    #[test]
    fn prunable_prefix_is_safe(
        decided in 0usize..100_000,
        lead in 0usize..64,
        n in 1usize..16,
        w in 0usize..64,
    ) {
        let cursor = LiveCursor {
            decided,
            depart: 0.0,
            prev_rate: None,
            watermark: decided + lead,
        };
        let cut = prunable_prefix(&cursor, Some(w), n);
        prop_assert_eq!(cut % n, 0);
        prop_assert!(cut <= cursor.decided);
        prop_assert!(cut + w <= cursor.watermark.max(w));
        prop_assert_eq!(prunable_prefix(&cursor, None, n), 0);
    }
}

/// The satellite regression: ~100k pushes through a live session keep
/// both the retained length and the buffer's allocated capacity at a
/// small constant — and the schedule still equals the full-history
/// reference bit for bit.
#[test]
fn hundred_thousand_pushes_bounded_memory() {
    let pattern = GopPattern::new(3, 9).unwrap();
    let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
    let total = 100_000usize;
    // Deterministic LCG sizes so the reference run sees the same stream.
    let mut state = 0x9e3779b97f4a7c15u64;
    let sizes: Vec<u64> = (0..total)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let jitter = state >> 52;
            match pattern.type_at(i) {
                smooth_mpeg::PictureType::I => 180_000 + jitter,
                smooth_mpeg::PictureType::P => 80_000 + jitter / 2,
                smooth_mpeg::PictureType::B => 16_000 + jitter / 8,
            }
        })
        .collect();

    let mut online = OnlineSmoother::new(params, pattern);
    let mut schedule = Vec::with_capacity(total);
    let mut max_retained = 0;
    let mut max_capacity = 0;
    for &s in &sizes {
        schedule.extend(online.push(s));
        max_retained = max_retained.max(online.retained());
        max_capacity = max_capacity.max(online.retained_capacity());
    }
    schedule.extend(online.finish());
    assert_eq!(schedule.len(), total);
    assert_eq!(online.pictures_pushed(), total);

    // O(H + N + K + D/τ), emphatically not O(total).
    assert!(max_retained < 128, "retained grew to {max_retained}");
    assert!(max_capacity < 256, "capacity grew to {max_capacity}");

    // Same bits as the smoother that kept all 100k sizes.
    let trace = VideoTrace::new("mem", pattern, Resolution::VGA, 30.0, sizes).unwrap();
    let walk = ReferencePatternEstimator::default();
    let reference = smooth_live_reference(&trace, params, &walk, RateSelection::Basic);
    assert_eq!(schedule, reference.schedule);

    let live = SmoothingResult { params, schedule };
    let report = check_theorem1(&live);
    assert!(report.holds(), "{report:?}");
}
