//! Properties pinning the incremental lookahead engine to its naive
//! reference (see `smooth_core::reference`).
//!
//! PR 3's contract is that the O(1)-per-picture fast paths are **bit
//! identical** to the superseded per-picture refill + walk-back code, for
//! every trace, parameter set, and estimator. These properties quantify
//! over random inputs in three regimes — offline, online with a declared
//! length, and live streaming with an unknown length — plus the
//! closed-form pattern estimate on its own.

use proptest::prelude::*;
use smooth_core::reference::{
    smooth_live_reference, smooth_reference_with, walk_back_estimate, ReferencePatternEstimator,
};
use smooth_core::{
    smooth, smooth_streaming, smooth_with, OnlineSmoother, PatternEstimator, RateSelection,
    SizeEstimator, SmootherParams, TypeDefaultEstimator,
};
use smooth_mpeg::{GopPattern, Resolution};
use smooth_trace::VideoTrace;

const TAU: f64 = 1.0 / 30.0;

/// Strategy: a random regular GOP pattern.
fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    prop_oneof![
        Just((3usize, 9usize)),
        Just((2, 6)),
        Just((3, 12)),
        Just((1, 5)),
        Just((1, 1)),
        Just((4, 12)),
        Just((2, 2)),
    ]
    .prop_map(|(m, n)| GopPattern::new(m, n).expect("regular pattern"))
}

/// Strategy: a random trace over a random pattern, 1..150 pictures with
/// sizes spanning three orders of magnitude.
fn arb_trace() -> impl Strategy<Value = VideoTrace> {
    (arb_pattern(), 1usize..150)
        .prop_flat_map(|(pattern, len)| {
            (
                Just(pattern),
                proptest::collection::vec(1_000u64..1_000_000, len),
            )
        })
        .prop_map(|(pattern, sizes)| {
            VideoTrace::new("prop", pattern, Resolution::VGA, 30.0, sizes).expect("positive sizes")
        })
}

/// Strategy: feasible parameters with K >= 1 and H spanning well past the
/// pattern length (the window engine's interesting regimes are H < N,
/// H = N, and H >> N).
fn arb_params() -> impl Strategy<Value = SmootherParams> {
    (1usize..=5, 1usize..=40, 0.0f64..0.4).prop_map(|(k, h, extra_slack)| {
        let d = (k as f64 + 1.0) * TAU + extra_slack;
        SmootherParams::new(d, k, h, TAU).expect("feasible by construction")
    })
}

/// Strategy: one of the rate-selection policies.
fn arb_selection() -> impl Strategy<Value = RateSelection> {
    prop_oneof![
        Just(RateSelection::Basic),
        Just(RateSelection::MovingAverage),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The closed-form O(1) pattern estimate equals the paper's literal
    /// walk-back loop for every (pattern, arrived prefix, slot).
    #[test]
    fn estimator_closed_form_equals_walk_back(
        pattern in arb_pattern(),
        arrived in proptest::collection::vec(1u64..1_000_000, 0..100),
        j in 0usize..220,
    ) {
        let est = PatternEstimator::default();
        let closed = est.estimate(j, &arrived, &pattern);
        let walked = walk_back_estimate(&est.defaults, j, &arrived, &pattern);
        prop_assert_eq!(closed.to_bits(), walked.to_bits(), "j={} n={}", j, pattern.n());
    }

    /// Offline: the window-engine smoother is bit-identical to the naive
    /// per-picture refill, for both the pattern and type-default
    /// estimators and both rate selections.
    #[test]
    fn offline_engine_matches_naive_reference(
        trace in arb_trace(),
        params in arb_params(),
        selection in arb_selection(),
    ) {
        let pat = PatternEstimator::default();
        let walk = ReferencePatternEstimator::default();
        prop_assert_eq!(
            smooth_with(&trace, params, &pat, selection),
            smooth_reference_with(&trace, params, &walk, selection)
        );
        let typed = TypeDefaultEstimator::default();
        prop_assert_eq!(
            smooth_with(&trace, params, &typed, selection),
            smooth_reference_with(&trace, params, &typed, selection)
        );
    }

    /// Online with a declared length: streaming through the incremental
    /// window equals both the offline engine and the naive reference.
    #[test]
    fn online_stored_matches_offline_and_reference(
        trace in arb_trace(),
        params in arb_params(),
    ) {
        let streamed = smooth_streaming(&trace, params);
        prop_assert_eq!(&streamed, &smooth(&trace, params));
        let walk = ReferencePatternEstimator::default();
        prop_assert_eq!(
            streamed,
            smooth_reference_with(&trace, params, &walk, RateSelection::Basic)
        );
    }

    /// Live streaming (unknown length until `finish`): the incremental
    /// window inside [`OnlineSmoother`] is bit-identical to the naive
    /// live reference loop.
    #[test]
    fn online_live_matches_naive_reference(
        trace in arb_trace(),
        params in arb_params(),
        selection in arb_selection(),
    ) {
        let mut online = OnlineSmoother::with_estimator(
            params,
            trace.pattern,
            PatternEstimator::default(),
            selection,
            None,
        );
        let mut schedule = Vec::with_capacity(trace.len());
        for &s in &trace.sizes {
            schedule.extend(online.push(s));
        }
        schedule.extend(online.finish());

        let walk = ReferencePatternEstimator::default();
        let reference = smooth_live_reference(&trace, params, &walk, selection);
        prop_assert_eq!(schedule.len(), reference.schedule.len());
        prop_assert_eq!(schedule, reference.schedule);
    }
}
