//! Event-driven validation of the system model (paper §4.1).
//!
//! The paper's recursion uses two idealizations: pictures are treated as
//! fully arrived at `(i+1)τ` (0-based) even though the encoder may finish
//! earlier, and delays are measured from the nominal capture instant
//! `iτ` even though the first bit may arrive later. The paper argues
//! ("If either x or y were known and used instead, the delay of each
//! picture may be smaller … but the difference would be negligible.")
//!
//! This module *checks* that argument: it re-simulates a computed
//! schedule against an encoder whose per-picture encoding completion
//! times are randomized inside their allowed windows, measures the true
//! delays, and reports the gap to the model's delays.

use crate::smoother::{SmoothingResult, TIME_EPS};
use serde::{Deserialize, Serialize};
use smooth_rng::Rng;

/// Comparison between modeled and event-simulated delays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSimReport {
    /// Per-picture true delay (measured from the actual first-bit arrival
    /// to the modeled departure), display order.
    pub true_delays: Vec<f64>,
    /// Largest amount by which a true delay *exceeds* the modeled delay.
    /// Positive values would falsify the model; expected ≤ ~[`TIME_EPS`].
    pub max_excess: f64,
    /// Mean (modeled − true) slack: how much the model over-states delay.
    pub mean_slack: f64,
    /// Pictures whose encoding had not finished by the time the server
    /// wanted to start sending them (would be starvation in a real
    /// system; must be zero when encoding finishes within the period).
    pub starvation_events: usize,
}

/// Re-simulates `result`'s schedule against randomized true arrival
/// times.
///
/// Picture `i`'s first bit arrives at `iτ + φ_i` and its encoding
/// completes at `iτ + ψ_i` with `0 ≤ φ_i ≤ ψ_i ≤ τ` (the paper's
/// assumption that encoding takes at most one period). The transmission
/// schedule (starts, rates, departures) is the one already computed; this
/// function measures the *true* delay `d_i − (iτ + φ_i)` and checks the
/// server never outruns the encoder.
pub fn validate_against_events(result: &SmoothingResult, seed: u64) -> EventSimReport {
    let tau = result.params.tau;
    let mut rng = Rng::seed_from_u64(seed);
    let mut true_delays = Vec::with_capacity(result.schedule.len());
    let mut max_excess = f64::NEG_INFINITY;
    let mut slack_sum = 0.0;
    let mut starvation = 0usize;

    for p in &result.schedule {
        let i = p.index as f64;
        // First bit somewhere in the first half of the period, encoding
        // complete by the period's end (uniformly random, ordered).
        let phi = rng.range_f64(0.0, 0.5 * tau);
        let psi = rng.range_f64(phi, tau);
        let arrival_start = i * tau + phi;
        let encoded_at = i * tau + psi;

        // True delay: first bit to last transmitted bit.
        let true_delay = p.depart - arrival_start;
        true_delays.push(true_delay);
        max_excess = max_excess.max(true_delay - p.delay);
        slack_sum += p.delay - true_delay;

        // Starvation check: the server begins sending picture i at
        // p.start; with K >= 1 the model guarantees p.start >= (i+K)τ ≥
        // encoded_at, so the whole picture is buffered in time.
        if p.start + TIME_EPS < encoded_at && result.params.k >= 1 {
            starvation += 1;
        }
    }

    EventSimReport {
        mean_slack: if true_delays.is_empty() {
            0.0
        } else {
            slack_sum / true_delays.len() as f64
        },
        true_delays,
        max_excess: if max_excess == f64::NEG_INFINITY {
            0.0
        } else {
            max_excess
        },
        starvation_events: starvation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SmootherParams;
    use crate::smoother::smooth;
    use smooth_trace::driving1;

    #[test]
    fn model_delays_upper_bound_true_delays() {
        // The paper's claim: measuring from the true (later) first-bit
        // arrival can only shrink delays, never grow them.
        let trace = driving1();
        let result = smooth(&trace, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        for seed in [1u64, 2, 3, 42] {
            let report = validate_against_events(&result, seed);
            assert!(
                report.max_excess <= TIME_EPS,
                "seed {seed}: a true delay exceeded the model by {}",
                report.max_excess
            );
            assert_eq!(report.starvation_events, 0, "seed {seed}");
            // The model over-states by at most half a period (φ ≤ τ/2).
            assert!(report.mean_slack >= 0.0);
            assert!(report.mean_slack <= 0.5 / 30.0 + 1e-9);
        }
    }

    #[test]
    fn true_delays_stay_within_bound_too() {
        let trace = driving1();
        let d = 0.1333;
        let result = smooth(&trace, SmootherParams::at_30fps(d, 1, 9).unwrap());
        let report = validate_against_events(&result, 7);
        assert!(report.true_delays.iter().all(|&x| x <= d + TIME_EPS));
        // And they are strictly positive: bits cannot leave before they
        // arrive (continuous service keeps the server behind the encoder).
        assert!(report.true_delays.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = driving1().truncated(45);
        let result = smooth(&trace, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        assert_eq!(
            validate_against_events(&result, 5),
            validate_against_events(&result, 5)
        );
        assert_ne!(
            validate_against_events(&result, 5).true_delays,
            validate_against_events(&result, 6).true_delays
        );
    }

    #[test]
    fn empty_schedule_is_trivial() {
        let trace = driving1().truncated(0);
        // truncated(0) clamps to 0 pictures; build via empty VideoTrace.
        let _ = trace;
        let result = SmoothingResult {
            params: SmootherParams::at_30fps(0.2, 1, 9).unwrap(),
            schedule: vec![],
        };
        let report = validate_against_events(&result, 1);
        assert_eq!(report.true_delays.len(), 0);
        assert_eq!(report.max_excess, 0.0);
    }
}
