//! Event-driven validation of the system model (paper §4.1).
//!
//! The paper's recursion uses two idealizations: pictures are treated as
//! fully arrived at `(i+1)τ` (0-based) even though the encoder may finish
//! earlier, and delays are measured from the nominal capture instant
//! `iτ` even though the first bit may arrive later. The paper argues
//! ("If either x or y were known and used instead, the delay of each
//! picture may be smaller … but the difference would be negligible.")
//!
//! This module *checks* that argument: it re-simulates a computed
//! schedule against an encoder whose per-picture encoding completion
//! times are randomized inside their allowed windows, measures the true
//! delays, and reports the gap to the model's delays.

use crate::smoother::{SmoothingResult, TIME_EPS};
use serde::{Deserialize, Serialize};
use smooth_rng::Rng;

/// Slots per timing-wheel level (64 — one occupancy word per level).
const WHEEL_SLOTS: u64 = 64;
/// log2([`WHEEL_SLOTS`]): the per-level shift.
const WHEEL_BITS: u32 = 6;
/// Highest representable level: `64^(l+1)` must not overflow the u64
/// delta shift (`6·(l+1) < 64`).
const WHEEL_MAX_LEVEL: usize = 9;

/// One wheel level: 64 slots of `(deadline, item)` entries plus an
/// occupancy bitmap (bit `s` set iff `slots[s]` is non-empty).
#[derive(Debug, Clone, Default)]
struct WheelLevel {
    slots: Vec<Vec<(u64, u64)>>,
    occupied: u64,
}

impl WheelLevel {
    fn new() -> Self {
        WheelLevel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// A hierarchical timing wheel over integer tick deadlines — the
/// event-driven scheduler's core: `schedule` and `pop_due` are O(1)
/// amortized, so advancing a fleet costs O(sessions **due**), not
/// O(sessions live).
///
/// Layout (Varghese/Lauck): level `l` has 64 slots of width `64^l`
/// ticks. An item with deadline `d` is hashed to the lowest level whose
/// slot width covers `d − now`; when the wheel's position crosses a
/// level boundary, the corresponding higher-level slot **cascades** —
/// its items are re-hashed into lower levels — so by the time a
/// deadline comes due its items sit in level 0, where one bitmap scan
/// finds the earliest occupied slot.
///
/// Ordering contract (what the determinism proptests rely on):
/// [`pop_due`](Self::pop_due) yields deadlines in non-decreasing order,
/// every item of one deadline pops in one call, and the whole pop
/// sequence is a pure function of the call history — bit-identical
/// replay for identical schedules. Order *within* one deadline is
/// deterministic but not insertion order (a cascade can re-file an
/// early item behind a late direct insert); callers that care about
/// cross-item order within a tick must impose their own (the session
/// engine folds digests in session-id order, so it does not).
/// Scheduling a deadline at or before the current position clamps to
/// the current position rather than panicking — it pops on the next
/// call.
#[derive(Debug, Clone)]
pub struct TimingWheel {
    /// Current position: every deadline `< now` has been popped.
    now: u64,
    /// Scheduled items not yet popped.
    len: usize,
    /// Levels, created on demand as far-out deadlines arrive.
    levels: Vec<WheelLevel>,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// An empty wheel positioned at tick 0.
    pub fn new() -> Self {
        TimingWheel {
            now: 0,
            len: 0,
            levels: vec![WheelLevel::new()],
        }
    }

    /// Scheduled items not yet popped.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current position: every deadline `< now()` has been popped.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `item` for `deadline`. Deadlines at or before the
    /// current position are clamped to it (they pop on the next
    /// [`pop_due`](Self::pop_due)).
    pub fn schedule(&mut self, deadline: u64, item: u64) {
        let d = deadline.max(self.now);
        let delta = d - self.now;
        let mut level = 0usize;
        while level < WHEEL_MAX_LEVEL && (delta >> (WHEEL_BITS * (level as u32 + 1))) != 0 {
            level += 1;
        }
        while self.levels.len() <= level {
            self.levels.push(WheelLevel::new());
        }
        let slot = ((d >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS - 1)) as usize;
        let lv = &mut self.levels[level];
        lv.slots[slot].push((d, item));
        lv.occupied |= 1 << slot;
        self.len += 1;
    }

    /// Pops every item of the **earliest** pending deadline `d ≤ until`
    /// into `out` (appending, in scheduling order) and returns `Some(d)`
    /// after advancing the position to `d`. Returns `None` — and
    /// advances the position to `until` — when no pending deadline is
    /// due by `until`. Call in a loop to drain a window; items scheduled
    /// between calls (re-armed sessions) are picked up as long as their
    /// deadlines are not in the past.
    ///
    /// # Panics
    ///
    /// Panics if `until` is before the current position.
    pub fn pop_due(&mut self, until: u64, out: &mut Vec<u64>) -> Option<u64> {
        assert!(
            until >= self.now,
            "pop_due({until}) behind position {}",
            self.now
        );
        loop {
            if self.len == 0 {
                self.now = until;
                return None;
            }
            // Earliest level-0 slot at or after the current position
            // within the current 64-tick window.
            let wstart = self.now & !(WHEEL_SLOTS - 1);
            let idx = (self.now & (WHEEL_SLOTS - 1)) as u32;
            let mask = self.levels[0].occupied & (u64::MAX << idx);
            if mask != 0 {
                let s = mask.trailing_zeros();
                let d = wstart + u64::from(s);
                if d > until {
                    self.now = until;
                    return None;
                }
                let lv = &mut self.levels[0];
                let slot = &mut lv.slots[s as usize];
                debug_assert!(slot.iter().all(|&(dl, _)| dl == d));
                self.len -= slot.len();
                out.extend(slot.iter().map(|&(_, item)| item));
                slot.clear();
                lv.occupied &= !(1u64 << s);
                self.now = d;
                return Some(d);
            }
            // Level 0 is dry for the rest of this window: either the
            // window ends past `until` (nothing due) or we cross the
            // boundary and cascade the higher-level slots that cover it.
            let boundary = wstart + WHEEL_SLOTS;
            if until < boundary {
                self.now = until;
                return None;
            }
            self.cross_boundary(boundary);
        }
    }

    /// Advances the position to `boundary` (a multiple of 64) and
    /// cascades every higher-level slot whose window the crossing
    /// enters, highest level first so re-hashed items land relative to
    /// the new position.
    fn cross_boundary(&mut self, boundary: u64) {
        let old = self.now;
        self.now = boundary;
        let mut changed = 0usize;
        for l in 1..self.levels.len() {
            if (old >> (WHEEL_BITS * l as u32)) != (boundary >> (WHEEL_BITS * l as u32)) {
                changed = l;
            } else {
                break;
            }
        }
        for l in (1..=changed).rev() {
            let slot = ((boundary >> (WHEEL_BITS * l as u32)) & (WHEEL_SLOTS - 1)) as usize;
            let lv = &mut self.levels[l];
            if lv.occupied & (1 << slot) == 0 {
                continue;
            }
            let drained = std::mem::take(&mut lv.slots[slot]);
            lv.occupied &= !(1u64 << slot);
            self.len -= drained.len();
            for (d, item) in drained {
                debug_assert!(d >= boundary, "cascaded deadline {d} behind {boundary}");
                self.schedule(d, item);
            }
        }
    }
}

/// Comparison between modeled and event-simulated delays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSimReport {
    /// Per-picture true delay (measured from the actual first-bit arrival
    /// to the modeled departure), display order.
    pub true_delays: Vec<f64>,
    /// Largest amount by which a true delay *exceeds* the modeled delay.
    /// Positive values would falsify the model; expected ≤ ~[`TIME_EPS`].
    pub max_excess: f64,
    /// Mean (modeled − true) slack: how much the model over-states delay.
    pub mean_slack: f64,
    /// Pictures whose encoding had not finished by the time the server
    /// wanted to start sending them (would be starvation in a real
    /// system; must be zero when encoding finishes within the period).
    pub starvation_events: usize,
}

/// Re-simulates `result`'s schedule against randomized true arrival
/// times.
///
/// Picture `i`'s first bit arrives at `iτ + φ_i` and its encoding
/// completes at `iτ + ψ_i` with `0 ≤ φ_i ≤ ψ_i ≤ τ` (the paper's
/// assumption that encoding takes at most one period). The transmission
/// schedule (starts, rates, departures) is the one already computed; this
/// function measures the *true* delay `d_i − (iτ + φ_i)` and checks the
/// server never outruns the encoder.
pub fn validate_against_events(result: &SmoothingResult, seed: u64) -> EventSimReport {
    let tau = result.params.tau;
    let mut rng = Rng::seed_from_u64(seed);
    let mut true_delays = Vec::with_capacity(result.schedule.len());
    let mut max_excess = f64::NEG_INFINITY;
    let mut slack_sum = 0.0;
    let mut starvation = 0usize;

    for p in &result.schedule {
        let i = p.index as f64;
        // First bit somewhere in the first half of the period, encoding
        // complete by the period's end (uniformly random, ordered).
        let phi = rng.range_f64(0.0, 0.5 * tau);
        let psi = rng.range_f64(phi, tau);
        let arrival_start = i * tau + phi;
        let encoded_at = i * tau + psi;

        // True delay: first bit to last transmitted bit.
        let true_delay = p.depart - arrival_start;
        true_delays.push(true_delay);
        max_excess = max_excess.max(true_delay - p.delay);
        slack_sum += p.delay - true_delay;

        // Starvation check: the server begins sending picture i at
        // p.start; with K >= 1 the model guarantees p.start >= (i+K)τ ≥
        // encoded_at, so the whole picture is buffered in time.
        if p.start + TIME_EPS < encoded_at && result.params.k >= 1 {
            starvation += 1;
        }
    }

    EventSimReport {
        mean_slack: if true_delays.is_empty() {
            0.0
        } else {
            slack_sum / true_delays.len() as f64
        },
        true_delays,
        max_excess: if max_excess == f64::NEG_INFINITY {
            0.0
        } else {
            max_excess
        },
        starvation_events: starvation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SmootherParams;
    use crate::smoother::smooth;
    use smooth_trace::driving1;

    #[test]
    fn model_delays_upper_bound_true_delays() {
        // The paper's claim: measuring from the true (later) first-bit
        // arrival can only shrink delays, never grow them.
        let trace = driving1();
        let result = smooth(&trace, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        for seed in [1u64, 2, 3, 42] {
            let report = validate_against_events(&result, seed);
            assert!(
                report.max_excess <= TIME_EPS,
                "seed {seed}: a true delay exceeded the model by {}",
                report.max_excess
            );
            assert_eq!(report.starvation_events, 0, "seed {seed}");
            // The model over-states by at most half a period (φ ≤ τ/2).
            assert!(report.mean_slack >= 0.0);
            assert!(report.mean_slack <= 0.5 / 30.0 + 1e-9);
        }
    }

    #[test]
    fn true_delays_stay_within_bound_too() {
        let trace = driving1();
        let d = 0.1333;
        let result = smooth(&trace, SmootherParams::at_30fps(d, 1, 9).unwrap());
        let report = validate_against_events(&result, 7);
        assert!(report.true_delays.iter().all(|&x| x <= d + TIME_EPS));
        // And they are strictly positive: bits cannot leave before they
        // arrive (continuous service keeps the server behind the encoder).
        assert!(report.true_delays.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = driving1().truncated(45);
        let result = smooth(&trace, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        assert_eq!(
            validate_against_events(&result, 5),
            validate_against_events(&result, 5)
        );
        assert_ne!(
            validate_against_events(&result, 5).true_delays,
            validate_against_events(&result, 6).true_delays
        );
    }

    #[test]
    fn wheel_pops_in_deadline_order() {
        let mut w = TimingWheel::new();
        for (d, item) in [(5u64, 50u64), (1, 10), (70, 700), (5, 51), (4100, 41_000)] {
            w.schedule(d, item);
        }
        assert_eq!(w.len(), 5);
        let mut out = Vec::new();
        assert_eq!(w.pop_due(u64::MAX, &mut out), Some(1));
        assert_eq!(out, vec![10]);
        out.clear();
        assert_eq!(w.pop_due(u64::MAX, &mut out), Some(5));
        assert_eq!(out, vec![50, 51], "same-deadline items pop together");
        out.clear();
        assert_eq!(w.pop_due(u64::MAX, &mut out), Some(70));
        assert_eq!(out, vec![700]);
        out.clear();
        assert_eq!(w.pop_due(u64::MAX, &mut out), Some(4100));
        assert_eq!(out, vec![41_000]);
        out.clear();
        assert_eq!(w.pop_due(u64::MAX, &mut out), None);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_until_bounds_the_drain_and_advances_position() {
        let mut w = TimingWheel::new();
        w.schedule(10, 1);
        w.schedule(200, 2);
        let mut out = Vec::new();
        assert_eq!(w.pop_due(5, &mut out), None);
        assert_eq!(w.now(), 5);
        assert!(out.is_empty());
        assert_eq!(w.pop_due(10, &mut out), Some(10));
        assert_eq!(w.pop_due(199, &mut out), None);
        assert_eq!(w.now(), 199);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(10_000, &mut out), Some(200));
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn wheel_clamps_past_deadlines_to_the_position() {
        let mut w = TimingWheel::new();
        let mut out = Vec::new();
        assert_eq!(w.pop_due(100, &mut out), None);
        w.schedule(40, 7); // behind the position: clamps to 100
        assert_eq!(w.pop_due(100, &mut out), Some(100));
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn wheel_rearms_during_drain_loop() {
        // The session-engine pattern: pop a deadline, re-arm the popped
        // item one period later, keep draining the same window.
        let mut w = TimingWheel::new();
        w.schedule(3, 1);
        w.schedule(5, 2);
        let mut seen = Vec::new();
        let mut out = Vec::new();
        while let Some(d) = w.pop_due(20, &mut out) {
            for item in out.drain(..) {
                seen.push((d, item));
                if d + 7 <= 20 {
                    w.schedule(d + 7, item);
                }
            }
        }
        assert_eq!(w.now(), 20);
        assert_eq!(
            seen,
            vec![(3, 1), (5, 2), (10, 1), (12, 2), (17, 1), (19, 2)]
        );
    }

    /// Randomized exerciser against a binary-heap reference: interleaved
    /// schedules (spanning several wheel levels) and bounded drains must
    /// agree with the heap on every (deadline → item multiset) pair.
    #[test]
    fn wheel_matches_heap_reference() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        for seed in [1u64, 7, 42, 0xdead] {
            let mut rng = Rng::seed_from_u64(seed);
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut next_item = 0u64;
            let mut pos = 0u64;
            for _ in 0..400 {
                // A burst of schedules at mixed horizons (within-window,
                // next-level, far-out).
                let burst = (rng.range_f64(0.0, 4.0)) as usize;
                for _ in 0..burst {
                    let horizon = match (rng.range_f64(0.0, 3.0)) as u32 {
                        0 => 50.0,
                        1 => 4000.0,
                        _ => 300_000.0,
                    };
                    let d = pos + rng.range_f64(0.0, horizon) as u64;
                    wheel.schedule(d, next_item);
                    heap.push(Reverse((d.max(pos), next_item)));
                    next_item += 1;
                }
                // Drain a bounded window.
                let until = pos + rng.range_f64(0.0, 600.0) as u64;
                let mut out = Vec::new();
                while let Some(d) = wheel.pop_due(until, &mut out) {
                    let mut want = Vec::new();
                    while let Some(&Reverse((hd, hi))) = heap.peek() {
                        if hd != d {
                            break;
                        }
                        want.push(hi);
                        heap.pop();
                    }
                    let mut got = std::mem::take(&mut out);
                    got.sort_unstable();
                    want.sort_unstable();
                    assert_eq!(got, want, "seed {seed}: deadline {d} items diverged");
                    if let Some(&Reverse((hd, _))) = heap.peek() {
                        assert!(hd > d || hd > until, "seed {seed}: heap has earlier work");
                    }
                }
                if let Some(&Reverse((hd, _))) = heap.peek() {
                    assert!(hd > until, "seed {seed}: wheel left {hd} ≤ {until} behind");
                }
                assert_eq!(wheel.len(), heap.len(), "seed {seed}");
                pos = until;
                assert_eq!(wheel.now(), pos);
            }
        }
    }

    #[test]
    fn empty_schedule_is_trivial() {
        let trace = driving1().truncated(0);
        // truncated(0) clamps to 0 pictures; build via empty VideoTrace.
        let _ = trace;
        let result = SmoothingResult {
            params: SmootherParams::at_30fps(0.2, 1, 9).unwrap(),
            schedule: vec![],
        };
        let report = validate_against_events(&result, 1);
        assert_eq!(report.true_delays.len(), 0);
        assert_eq!(report.max_excess, 0.0);
    }
}
