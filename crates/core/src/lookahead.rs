//! Incremental lookahead resolution: the O(1)-per-picture window engine.
//!
//! Every picture `i`, the smoothing algorithm needs the resolved sizes
//! `S_i .. S_{i+look−1}` — exact values for the arrived prefix, estimates
//! beyond it — as one contiguous `f64` slice for the interval-intersection
//! loop. The naive approach ([`crate::reference::fill_lookahead`])
//! rebuilds that slice from scratch every picture: O(H) work plus one
//! estimator call per unresolved slot, per picture.
//!
//! [`LookaheadWindow`] instead *slides*: between picture `i−1` and `i`
//! the window `[i−1, i−1+H)` and the window `[i, i+H)` share all but one
//! slot, and a shared slot's resolved value can only change in two ways:
//!
//! 1. it crossed the **arrived-watermark** — the picture arrived, so the
//!    estimate is replaced by the exact size (each slot crosses at most
//!    once, amortized O(1) per picture);
//! 2. a new arrival **invalidated its estimate** — which arrivals affect
//!    which estimates is the estimator's declared
//!    [`Invalidation`] contract: the paper's pattern estimator is only
//!    affected by a same-GOP-slot arrival (≤ ⌈H/N⌉ slots per arrival),
//!    oracle/fixed estimators never, arbitrary estimators conservatively
//!    on every arrival.
//!
//! So the steady-state per-picture cost is: drop one slot, resolve one
//! newly exposed slot, plus the (amortized O(1)) watermark crossings and
//! same-slot refreshes — independent of `H`. The interval-intersection
//! loop in [`crate::smoother`] remains O(H) per picture; it is the
//! paper's own algorithm and is excluded from the engine's cost bound.
//!
//! The window stores its slots in a flat `Vec` with a moving start
//! offset, compacted once the dead prefix exceeds the live length
//! (amortized O(1) per advance), so the live region is always one
//! contiguous `&[f64]` — exactly what `DecideCtx::sizes_ahead` wants.
//!
//! **Bit-identity.** Every resolved value is the same pure function of
//! `(j, visible prefix)` the naive refill computes — exact slots are
//! `visible[j] as f64`, estimated slots are `estimate(j)` recomputed
//! whenever the declared invalidation says the inputs changed — so the
//! produced slices, and therefore the schedules, are bit-identical to
//! the reference implementation. The proptests in
//! `crates/core/tests/incremental_props.rs` pin this for offline, online
//! stored, and online live modes.

pub use crate::estimate::Invalidation;

/// Incrementally maintained lookahead window (see the module docs).
///
/// One instance serves one smoothing run at a time but is designed to be
/// **reused across runs** (and across traces, in batch mode): `advance`
/// detects non-successive picture indices and falls back to a full
/// refill, so a fresh run simply starts with its first picture. All
/// buffers are retained between runs — after warm-up the hot path
/// performs no allocations at all.
#[derive(Debug, Default)]
pub struct LookaheadWindow {
    /// Slot storage; the live window is `buf[lo .. lo + len]`.
    buf: Vec<f64>,
    /// Start of the live window within `buf`.
    lo: usize,
    /// Number of live slots.
    len: usize,
    /// Display index of the picture in `buf[lo]`.
    front: usize,
    /// Arrived-prefix length (`visible.len()`) at the last advance.
    /// Slots `j < watermark` hold exact sizes; slots `j ≥ watermark`
    /// hold estimates.
    watermark: usize,
    /// `false` until the first `advance` after construction/reset.
    primed: bool,
}

impl LookaheadWindow {
    /// Creates an empty window. Capacity grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all cached state; the next [`advance`](Self::advance)
    /// performs a full refill. Buffer capacity is retained.
    pub fn reset(&mut self) {
        self.primed = false;
    }

    /// Touches the window's slot storage so batch drivers interleaving
    /// many windows can pull the *next* session's buffer toward cache
    /// while still working on the current one. The buffer is the one
    /// per-session heap block in an otherwise struct-of-arrays layout,
    /// so its demand-miss latency is otherwise fully exposed.
    #[inline(always)]
    pub fn prewarm(&self) {
        std::hint::black_box(self.buf.first().copied());
        std::hint::black_box(self.buf.last().copied());
    }

    /// Slides the window to picture `i` and returns the resolved sizes
    /// `S_i .. S_{i+look−1}` as a contiguous slice.
    ///
    /// * `visible` — the arrived prefix (`visible[x]` is the exact size
    ///   of picture `x`); its length is the arrived-watermark and must be
    ///   non-decreasing across successive calls of one run.
    /// * `invalidation` — the estimator's declared contract; governs
    ///   which cached estimates are recomputed.
    /// * `slot_modulus` — the GOP pattern period `N`, consulted only for
    ///   [`Invalidation::OnSameSlotArrival`].
    /// * `estimate` — resolves a not-yet-arrived picture `j`; must be a
    ///   pure function of `(j, visible)`.
    ///
    /// Calling with `i` not equal to the previous picture + 1 (a new
    /// run, a reset, or any non-sliding access) falls back to a full
    /// refill, which is exactly the naive
    /// [`crate::reference::fill_lookahead`].
    #[inline(always)]
    pub fn advance(
        &mut self,
        i: usize,
        look: usize,
        visible: &[u64],
        invalidation: Invalidation,
        slot_modulus: usize,
        mut estimate: impl FnMut(usize) -> f64,
    ) -> &[f64] {
        let w1 = visible.len();
        let sliding = self.primed && self.len > 0 && i == self.front + 1 && w1 >= self.watermark;
        if !sliding {
            return self.refill(i, look, visible, estimate);
        }

        // 1. Drop the slot for picture i − 1.
        self.lo += 1;
        self.len -= 1;
        self.front = i;

        // Live-window view: `win[j − i]` is picture `j`'s slot. The loops
        // below index it with `j < i + win.len()`, a bound the optimizer
        // can discharge, where the equivalent `self.buf[self.lo + …]`
        // stores each kept a checked add.
        let win = &mut self.buf[self.lo..self.lo + self.len];

        // 2. Estimate → exact for slots that crossed the watermark.
        let w0 = self.watermark;
        for j in w0.max(i)..w1.min(i + win.len()) {
            win[j - i] = visible[j] as f64;
        }

        // 3. Recompute estimates the new arrivals invalidated (slots at
        //    or beyond the new watermark; slots below it are exact).
        if w1 > w0 {
            let est_from = w1.max(i);
            let est_to = i + win.len();
            match invalidation {
                Invalidation::Never => {}
                Invalidation::OnAnyArrival => {
                    for j in est_from..est_to {
                        win[j - i] = estimate(j);
                    }
                }
                Invalidation::OnSameSlotArrival => {
                    let n = slot_modulus.max(1);
                    if w1 - w0 >= n {
                        // Every GOP slot saw an arrival.
                        for j in est_from..est_to {
                            win[j - i] = estimate(j);
                        }
                    } else {
                        for x in w0..w1 {
                            // First j ≥ est_from with j ≡ x (mod n), by
                            // stepping (x is at most a window behind, so
                            // this beats an integer division).
                            let mut j = x;
                            while j < est_from {
                                j += n;
                            }
                            if j < est_to {
                                // One estimate serves the whole class:
                                // `OnSameSlotArrival` pins unresolved
                                // same-slot estimates equal.
                                let v = estimate(j);
                                while j < est_to {
                                    win[j - i] = v;
                                    j += n;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.watermark = w1;

        // 4. Grow or shrink the back edge to the requested length. In
        //    steady state this appends exactly the one newly exposed
        //    slot; near the end of a finite trace `look` shrinks and
        //    nothing is appended.
        while self.len < look {
            let j = i + self.len;
            let v = if j < w1 {
                visible[j] as f64
            } else if invalidation == Invalidation::OnSameSlotArrival
                && slot_modulus >= 1
                && j - i >= slot_modulus
                && j - slot_modulus >= w1
            {
                // The slot one GOP period back is in the window, is
                // itself unresolved, and was brought current above — so
                // under the `OnSameSlotArrival` class-equality promise
                // its cached value *is* `estimate(j)`, for free.
                self.buf[self.lo + (j - slot_modulus - i)]
            } else {
                estimate(j)
            };
            debug_assert_eq!(self.buf.len(), self.lo + self.len);
            self.buf.push(v);
            self.len += 1;
        }
        if self.len > look {
            self.len = look;
            self.buf.truncate(self.lo + self.len);
        }

        // 5. Compact once the dead prefix outweighs the live window
        //    (amortized O(1): `lo` grows by one per advance and each
        //    compaction copies at most `len ≤ lo` slots).
        if self.lo > self.len {
            self.buf.copy_within(self.lo.., 0);
            self.buf.truncate(self.len);
            self.lo = 0;
        }

        &self.buf[self.lo..self.lo + self.len]
    }

    /// Full refill — the naive resolution, used for the first picture of
    /// a run and as the fallback for non-sliding access. Kept out of line
    /// so the inlined sliding fast path stays small.
    #[cold]
    #[inline(never)]
    fn refill(
        &mut self,
        i: usize,
        look: usize,
        visible: &[u64],
        mut estimate: impl FnMut(usize) -> f64,
    ) -> &[f64] {
        self.buf.clear();
        self.lo = 0;
        self.len = look;
        self.front = i;
        self.watermark = visible.len();
        self.primed = true;
        for j in i..i + look {
            self.buf.push(if j < visible.len() {
                visible[j] as f64
            } else {
                estimate(j)
            });
        }
        &self.buf[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    /// Drives the window and the naive refill side by side over a
    /// synthetic arrival process and asserts slice equality each step.
    fn check_against_naive(
        sizes: &[u64],
        h: usize,
        n: usize,
        invalidation: Invalidation,
        arrived_at: impl Fn(usize) -> usize,
    ) {
        // Pure estimator honoring the declared invalidation: for
        // OnSameSlotArrival use the most recent same-slot arrival (the
        // pattern rule), for Never a constant, else a hash of the prefix.
        let estimate_with = |j: usize, visible: &[u64]| -> f64 {
            match invalidation {
                Invalidation::Never => (j % 7) as f64 + 1.0,
                Invalidation::OnSameSlotArrival => {
                    let mut back = j;
                    while back >= n {
                        back -= n;
                        if back < visible.len() {
                            return visible[back] as f64;
                        }
                    }
                    (j % n) as f64 + 0.5
                }
                Invalidation::OnAnyArrival => visible.len() as f64 * 1000.0 + (j % 11) as f64,
            }
        };

        let mut window = LookaheadWindow::new();
        let mut scratch = Vec::new();
        for i in 0..sizes.len() {
            let look = h.min(sizes.len() - i);
            let arrived = arrived_at(i).min(sizes.len());
            let visible = &sizes[..arrived];
            let got = window
                .advance(i, look, visible, invalidation, n, |j| {
                    estimate_with(j, visible)
                })
                .to_vec();
            reference::fill_lookahead(&mut scratch, i, look, visible, |j| {
                estimate_with(j, visible)
            });
            assert_eq!(got, scratch, "picture {i}");
        }
    }

    #[test]
    fn matches_naive_for_every_invalidation_mode() {
        let sizes: Vec<u64> = (0..200).map(|x| 1_000 + x * 37 % 5_000).collect();
        for inval in [
            Invalidation::OnAnyArrival,
            Invalidation::OnSameSlotArrival,
            Invalidation::Never,
        ] {
            // K=1-style watermark (one picture ahead).
            check_against_naive(&sizes, 9, 9, inval, |i| i + 1);
            // Bursty watermark: jumps several pictures at a time.
            check_against_naive(&sizes, 12, 9, inval, |i| (i / 5) * 7);
            // Watermark far ahead of the window.
            check_against_naive(&sizes, 6, 9, inval, |i| i + 40);
        }
    }

    #[test]
    fn window_shrinks_at_trace_end() {
        let sizes: Vec<u64> = (0..30).map(|x| 100 + x).collect();
        check_against_naive(&sizes, 9, 9, Invalidation::OnSameSlotArrival, |i| i + 1);
    }

    #[test]
    fn reset_forces_refill() {
        let sizes: Vec<u64> = (0..40).map(|x| 7 * x + 1).collect();
        let mut w = LookaheadWindow::new();
        let a = w
            .advance(0, 9, &sizes[..1], Invalidation::Never, 9, |_| 1.0)
            .to_vec();
        w.advance(1, 9, &sizes[..2], Invalidation::Never, 9, |_| 1.0);
        w.reset();
        let b = w
            .advance(0, 9, &sizes[..1], Invalidation::Never, 9, |_| 1.0)
            .to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn non_successive_access_falls_back_to_refill() {
        let sizes: Vec<u64> = (0..60).map(|x| x * x % 997).collect();
        let mut w = LookaheadWindow::new();
        let mut scratch = Vec::new();
        for &i in &[0usize, 1, 2, 10, 11, 5, 6, 7] {
            let visible = &sizes[..(i + 2).min(sizes.len())];
            let got = w
                .advance(i, 9, visible, Invalidation::OnAnyArrival, 9, |j| {
                    j as f64 + visible.len() as f64
                })
                .to_vec();
            reference::fill_lookahead(&mut scratch, i, 9, visible, |j| {
                j as f64 + visible.len() as f64
            });
            assert_eq!(got, scratch, "i={i}");
        }
    }
}
