//! Explicit SIMD kernels for the bound-intersection loop, with runtime
//! dispatch.
//!
//! [`bound_blocks8`] runs all full 8-lane blocks of one picture's rate
//! bound intersection (paper eqs. 12–13). Three kernels implement the
//! identical computation:
//!
//! * **scalar** — the portable fallback: fixed-trip elementwise passes
//!   over a caller-owned [`BlockLanes`] buffer, written so LLVM
//!   autovectorizes them (this is the pre-PR `bound_blocks8` verbatim,
//!   and the only path on non-x86-64 targets);
//! * **sse2** — explicit `std::arch` 2-lane kernel (`divpd` et al.),
//!   always available on x86-64 (SSE2 is baseline);
//! * **avx2** — explicit 4-lane kernel (`vdivpd ymm`), used when the CPU
//!   reports AVX2 at runtime.
//!
//! Every kernel produces **bit-identical** results: IEEE packed division
//! of the same operands gives the same bits as scalar division, the
//! compare-select max/min instructions (`maxpd`/`minpd`: `src1 > src2 ?
//! src1 : src2`) match [`sel_max`]/[`sel_min`] exactly, and every
//! addition is either performed in the scalar chain's association or
//! reassociated only under the `exact_prefix` contract (all operands
//! integer-valued with partial sums < 2⁵³, so each addition is exact).
//! The `simd_props` proptests pin each dispatch path against the scalar
//! kernel and the frozen `reference` oracle, schedule-byte for
//! schedule-byte.
//!
//! # Dispatch
//!
//! The level is chosen once per process: the `SMOOTH_SIMD` environment
//! variable (`scalar` | `sse2` | `avx2` | `auto`, default `auto`) is
//! clamped to what the CPU supports, `auto` picking the widest available
//! kernel. Tests and benchmarks may override it with
//! [`set_active_level`].
//!
//! # Safety
//!
//! This is the crate's only module with `unsafe` code (the crate is
//! otherwise `#![forbid(unsafe_code)]`; the lint is scoped back to
//! `deny` + a module-level `allow` here, and
//! `unsafe_op_in_unsafe_fn` is denied crate-wide). The `unsafe` surface
//! is exactly:
//!
//! * calling a `#[target_feature(enable = "avx2")]` kernel, guarded by
//!   [`std::arch::is_x86_feature_detected!`] at dispatch-level init;
//! * unaligned vector loads/stores on `[f64; 8]` arrays, whose bounds
//!   are checked by `debug_assert!` and guaranteed by the array types.

#![allow(unsafe_code)]

/// Lookahead steps per vectorized round of the bound-intersection loop.
pub(crate) const DECIDE_BLOCK: usize = 8;

use std::sync::atomic::{AtomicU8, Ordering};

/// Compare-select max, compiling to a bare `maxsd`/`maxpd` with none of
/// `f64::max`'s NaN/−0 fixup instructions.
///
/// Bit-identical to `f64::max` on the quotient domain: every lane value
/// is `+0`, a positive finite, or `+inf` (numerators are nonnegative
/// sums, nonpositive denominators are replaced by `+inf` before the
/// folds), so the cases where the two differ — NaN operands and
/// `−0`/`+0` ties — cannot occur. This is also exactly the hardware
/// `maxpd` rule (`src1 > src2 ? src1 : src2`), which is why the packed
/// kernels match lane for lane.
#[inline(always)]
pub(crate) fn sel_max(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// Compare-select min; see [`sel_max`] for the equivalence argument.
#[inline(always)]
pub(crate) fn sel_min(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Stride-half pairwise max of 8 lanes. Max is associative and
/// commutative, so the tree computes the identical value to a
/// left-to-right fold while shortening the latency chain to log₂ 8
/// levels of adjacent-pair `maxpd`. The packed kernels compute this
/// exact tree with `maxpd` (`v0..3` as `src1` against `v4..7`, then the
/// 128-bit halves, then the lane pair).
#[inline(always)]
fn fold_max8(v: &[f64; DECIDE_BLOCK]) -> f64 {
    let a = sel_max(v[0], v[4]);
    let b = sel_max(v[1], v[5]);
    let c = sel_max(v[2], v[6]);
    let d = sel_max(v[3], v[7]);
    sel_max(sel_max(a, c), sel_max(b, d))
}

/// Stride-half pairwise min of 8 lanes; see [`fold_max8`].
#[inline(always)]
fn fold_min8(v: &[f64; DECIDE_BLOCK]) -> f64 {
    let a = sel_min(v[0], v[4]);
    let b = sel_min(v[1], v[5]);
    let c = sel_min(v[2], v[6]);
    let d = sel_min(v[3], v[7]);
    sel_min(sel_min(a, c), sel_min(b, d))
}

/// State threaded through the bound-intersection loop of one picture.
pub(crate) struct BoundState {
    pub(crate) sum: f64,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) lower_old: f64,
    pub(crate) upper_old: f64,
    pub(crate) lower0: f64,
    pub(crate) upper0: f64,
}

/// Per-block lane arrays, declared by the *caller* of [`bound_blocks8`]
/// so they stay loop-carried (memory-resident) across blocks on the
/// scalar path. Keeping them out of the inlined block body stops scalar
/// replacement from dissolving the arrays, which would unroll the
/// elementwise passes into scalar chains the backend fails to re-pack
/// into `divpd`. The explicit SSE2/AVX2 kernels keep every lane in
/// vector registers instead and touch this buffer only on the rare
/// crossing block (to hand the lanes to the shared crossing locator).
///
/// Public so batch drivers ([`crate::decide_live`] callers such as the
/// session engine) can hoist one buffer across many sessions; the fields
/// stay private — `Default` is the only constructor needed.
#[derive(Default)]
pub struct BlockLanes {
    sums: [f64; DECIDE_BLOCK],
    dls: [f64; DECIDE_BLOCK],
    dus: [f64; DECIDE_BLOCK],
    qls: [f64; DECIDE_BLOCK],
    qus: [f64; DECIDE_BLOCK],
}

/// Which kernel the dispatcher runs.
///
/// Ordered by width: `Scalar < Sse2 < Avx2`, so clamping a request to
/// the machine's capability is a `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable autovectorized fallback (the only level off x86-64).
    Scalar,
    /// Explicit 2-lane `std::arch` kernel (x86-64 baseline).
    Sse2,
    /// Explicit 4-lane `std::arch` kernel (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name, matching the `SMOOTH_SIMD` values.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            1 => SimdLevel::Sse2,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Scalar,
        }
    }
}

/// `ACTIVE` holds `level as u8 + 1`; 0 means "not yet initialised".
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The widest kernel this CPU can run.
fn detect_cap() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::Scalar
    }
}

#[cold]
fn init_active() -> SimdLevel {
    let cap = detect_cap();
    let req = std::env::var("SMOOTH_SIMD")
        .ok()
        .map(|v| v.trim().to_ascii_lowercase());
    let level = match req.as_deref() {
        Some("scalar") | Some("off") => SimdLevel::Scalar,
        Some("sse2") => SimdLevel::Sse2.min(cap),
        Some("avx2") => SimdLevel::Avx2.min(cap),
        // `auto`, unset, or unrecognized: widest available.
        _ => cap,
    };
    ACTIVE.store(level as u8 + 1, Ordering::Relaxed);
    level
}

/// The kernel the next [`bound_blocks8`] call will dispatch to.
#[inline]
pub fn active_level() -> SimdLevel {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => init_active(),
        v => SimdLevel::from_u8(v - 1),
    }
}

/// Every level this CPU can run, narrowest first. Always starts with
/// [`SimdLevel::Scalar`].
pub fn available_levels() -> Vec<SimdLevel> {
    let cap = detect_cap();
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= cap)
        .collect()
}

/// Forces the dispatch level for the whole process (tests, benchmarks,
/// and the determinism CI lanes use this; normal callers should let
/// `SMOOTH_SIMD`/auto-detection decide). Returns `false` — leaving the
/// level unchanged — when the CPU cannot run the requested kernel.
///
/// The override is process-global; concurrent tests that force
/// different levels must serialize themselves (see `simd_props`).
pub fn set_active_level(level: SimdLevel) -> bool {
    if level > detect_cap() {
        return false;
    }
    ACTIVE.store(level as u8 + 1, Ordering::Relaxed);
    true
}

/// Drops any [`set_active_level`] override, returning to the
/// `SMOOTH_SIMD`/auto-detected level.
pub fn reset_active_level() {
    ACTIVE.store(0, Ordering::Relaxed);
}

/// All full 8-lane blocks of the bound-intersection loop, in one call,
/// dispatched to the active kernel.
///
/// Each block computes its prefix sums, denominators, and quotients for
/// 8 lookahead steps, then folds them into the running `lower`/`upper`
/// by order-free max/min reductions. Returns the next step `h` and
/// whether the bounds crossed.
///
/// The running bounds are monotone (the max only grows, the min only
/// shrinks), so the end-of-block crossing test is exact: a crossing at
/// any lane implies the block-end bounds cross, and vice versa. The
/// rare crossing block hands its lanes to [`locate_crossing`], which
/// recovers the scalar loop's exact exit state (crossing lane,
/// pre-crossing `lower_old`/`upper_old`, prefix `sum`) with branchless
/// doubling scans — shared by every kernel, so the cold path cannot
/// diverge between them.
///
/// `#[inline(never)]` + the caller-owned lane buffer keep the scalar
/// path's arrays memory-resident (see [`BlockLanes`]); the explicit
/// kernels are unaffected but keep the same boundary so `decide_one`'s
/// register pressure stays flat.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn bound_blocks8(
    sizes_ahead: &[f64],
    i: usize,
    k: usize,
    tau: f64,
    d_bound: f64,
    time: f64,
    exact_prefix: bool,
    lanes: &mut BlockLanes,
    st: &mut BoundState,
) -> (usize, bool) {
    match active_level() {
        SimdLevel::Scalar => scalar::bound_blocks8(
            sizes_ahead,
            i,
            k,
            tau,
            d_bound,
            time,
            exact_prefix,
            lanes,
            st,
        ),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline target, so the
        // feature contract holds on every CPU this arm can run on.
        SimdLevel::Sse2 => unsafe {
            x86::bound_blocks8_sse2(
                sizes_ahead,
                i,
                k,
                tau,
                d_bound,
                time,
                exact_prefix,
                lanes,
                st,
            )
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_level()` only returns `Avx2` when
        // `detect_cap()` observed `is_x86_feature_detected!("avx2")`
        // (both the env-var init and `set_active_level` clamp to the
        // detected capability), so the target feature is present.
        SimdLevel::Avx2 => unsafe {
            x86::bound_blocks8_avx2(
                sizes_ahead,
                i,
                k,
                tau,
                d_bound,
                time,
                exact_prefix,
                lanes,
                st,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::bound_blocks8(
            sizes_ahead,
            i,
            k,
            tau,
            d_bound,
            time,
            exact_prefix,
            lanes,
            st,
        ),
    }
}

/// Runs one forced kernel regardless of the active dispatch level —
/// the byte-compare harness for the `simd_props` tests. Returns `None`
/// when this CPU cannot run `level`.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn bound_blocks8_at_level(
    level: SimdLevel,
    sizes_ahead: &[f64],
    i: usize,
    k: usize,
    tau: f64,
    d_bound: f64,
    time: f64,
    exact_prefix: bool,
    lanes: &mut BlockLanes,
) -> Option<(usize, bool, [f64; 7])> {
    if level > detect_cap() {
        return None;
    }
    let mut st = BoundState {
        sum: 0.0,
        lower: 0.0,
        upper: f64::INFINITY,
        lower_old: 0.0,
        upper_old: f64::INFINITY,
        lower0: 0.0,
        upper0: f64::INFINITY,
    };
    let (h, crossed) = match level {
        SimdLevel::Scalar => scalar::bound_blocks8(
            sizes_ahead,
            i,
            k,
            tau,
            d_bound,
            time,
            exact_prefix,
            lanes,
            &mut st,
        ),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline target, so the
        // feature contract holds on every CPU this arm can run on.
        SimdLevel::Sse2 => unsafe {
            x86::bound_blocks8_sse2(
                sizes_ahead,
                i,
                k,
                tau,
                d_bound,
                time,
                exact_prefix,
                lanes,
                &mut st,
            )
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level <= detect_cap()` was checked above, so AVX2 is
        // present when this arm is reached.
        SimdLevel::Avx2 => unsafe {
            x86::bound_blocks8_avx2(
                sizes_ahead,
                i,
                k,
                tau,
                d_bound,
                time,
                exact_prefix,
                lanes,
                &mut st,
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("non-scalar level above detect_cap on non-x86-64"),
    };
    Some((
        h,
        crossed,
        [
            st.sum,
            st.lower,
            st.upper,
            st.lower_old,
            st.upper_old,
            st.lower0,
            st.upper0,
        ],
    ))
}

/// Recovers the scalar loop's exact exit state for a crossing block.
///
/// On entry `lanes.qls`/`lanes.qus` hold the block's post-select lane
/// quotients and `lanes.sums` its prefix sums; `lower`/`upper` are the
/// running bounds *before* the block. Turns the lane quotients into
/// inclusive running bounds in place (doubling scan; max/min are
/// associative, commutative, and idempotent, so every scanned value
/// equals the sequential chain's bit for bit), counts the
/// still-overlapping lanes to find the crossing lane, and writes the
/// pre-/post-crossing bounds and prefix sum into `st`. Returns the
/// crossing lane index.
#[cold]
fn locate_crossing(lanes: &mut BlockLanes, lower: f64, upper: f64, st: &mut BoundState) -> usize {
    for j in (1..DECIDE_BLOCK).rev() {
        lanes.qls[j] = sel_max(lanes.qls[j], lanes.qls[j - 1]);
        lanes.qus[j] = sel_min(lanes.qus[j], lanes.qus[j - 1]);
    }
    for j in (2..DECIDE_BLOCK).rev() {
        lanes.qls[j] = sel_max(lanes.qls[j], lanes.qls[j - 2]);
        lanes.qus[j] = sel_min(lanes.qus[j], lanes.qus[j - 2]);
    }
    for j in (4..DECIDE_BLOCK).rev() {
        lanes.qls[j] = sel_max(lanes.qls[j], lanes.qls[j - 4]);
        lanes.qus[j] = sel_min(lanes.qus[j], lanes.qus[j - 4]);
    }
    for j in 0..DECIDE_BLOCK {
        lanes.qls[j] = sel_max(lower, lanes.qls[j]);
        lanes.qus[j] = sel_min(upper, lanes.qus[j]);
    }
    // `qls[j] > qus[j]` is monotone in `j` (the running lower bound only
    // grows, the upper only shrinks), so the number of still-overlapping
    // lanes *is* the crossing lane index. Lane 7 crossed (that is what
    // brought us here), so the count is at most 7; the `min` just tells
    // the compiler.
    let mut lane = 0usize;
    for j in 0..DECIDE_BLOCK {
        lane += (lanes.qls[j] <= lanes.qus[j]) as usize;
    }
    let lane = lane.min(DECIDE_BLOCK - 1);
    st.lower_old = if lane == 0 {
        lower
    } else {
        lanes.qls[lane - 1]
    };
    st.upper_old = if lane == 0 {
        upper
    } else {
        lanes.qus[lane - 1]
    };
    st.sum = lanes.sums[lane];
    st.lower = lanes.qls[lane];
    st.upper = lanes.qus[lane];
    lane
}

mod scalar {
    use super::{
        fold_max8, fold_min8, locate_crossing, sel_max, sel_min, BlockLanes, BoundState,
        DECIDE_BLOCK,
    };

    /// The portable kernel: the pre-PR autovectorized `bound_blocks8`
    /// verbatim, with the crossing tail factored into the shared
    /// [`locate_crossing`].
    #[allow(clippy::too_many_arguments)]
    pub(super) fn bound_blocks8(
        sizes_ahead: &[f64],
        i: usize,
        k: usize,
        tau: f64,
        d_bound: f64,
        time: f64,
        exact_prefix: bool,
        lanes: &mut BlockLanes,
        st: &mut BoundState,
    ) -> (usize, bool) {
        let len = sizes_ahead.len();
        let mut sum = st.sum;
        let mut lower = st.lower;
        let mut upper = st.upper;
        let mut h = 0usize;
        while len - h >= DECIDE_BLOCK {
            let sizes: &[f64; DECIDE_BLOCK] = sizes_ahead[h..h + DECIDE_BLOCK]
                .try_into()
                .expect("slice is exactly one block");
            // `base + j as f64` equals `(i + h + j) as f64` bit for bit:
            // both sides are integers below 2^53, so conversion and sum
            // are exact. This keeps the denominator passes straight-line
            // packed arithmetic.
            let base_l = (i + h) as f64;
            let base_u = (i + h + k + 1) as f64;
            if exact_prefix {
                // Hillis–Steele parallel scan. Every operand is a
                // nonnegative integer-valued f64 with partial sums < 2^53
                // (the `exact_prefix` contract), so each addition is
                // exact and any association yields the same bits as the
                // sequential chain — at a quarter of its latency. The
                // quotient arrays double as scan temporaries; they are
                // rewritten below.
                lanes.qls[0] = sizes[0];
                for j in 1..DECIDE_BLOCK {
                    lanes.qls[j] = sizes[j - 1] + sizes[j];
                }
                lanes.qus[0] = lanes.qls[0];
                lanes.qus[1] = lanes.qls[1];
                for j in 2..DECIDE_BLOCK {
                    lanes.qus[j] = lanes.qls[j - 2] + lanes.qls[j];
                }
                for j in 0..4 {
                    lanes.sums[j] = sum + lanes.qus[j];
                }
                for j in 4..DECIDE_BLOCK {
                    lanes.sums[j] = sum + (lanes.qus[j - 4] + lanes.qus[j]);
                }
            } else {
                let mut s = sum;
                for (j, &size) in sizes.iter().enumerate().take(DECIDE_BLOCK) {
                    s += size;
                    lanes.sums[j] = s;
                }
            }
            for j in 0..DECIDE_BLOCK {
                // r_L(h): delay-bound constraint (paper eq. 12).
                lanes.dls[j] = d_bound + (base_l + j as f64) * tau - time;
                // r_U(h): continuous-service constraint (paper eq. 13).
                lanes.dus[j] = (base_u + j as f64) * tau - time;
            }
            // The quotients as *unconditional* elementwise passes (IEEE
            // division cannot trap; packed division of the same operands
            // gives the same bits as scalar). The nonpositive-denominator
            // guard is a separate branchless select pass — a branch
            // inside the division loop would block packing.
            for j in 0..DECIDE_BLOCK {
                lanes.qls[j] = lanes.sums[j] / lanes.dls[j];
            }
            for j in 0..DECIDE_BLOCK {
                lanes.qus[j] = lanes.sums[j] / lanes.dus[j];
            }
            // Both denominator sequences are nondecreasing in the lane
            // index: `base + j` is exact, multiplication by τ > 0 and the
            // constant additions are weakly monotone under IEEE rounding.
            // So a positive lane 0 makes every select below an identity,
            // and the pass can be skipped — the common case once the
            // schedule leaves the start-up transient.
            if lanes.dls[0] <= 0.0 {
                for j in 0..DECIDE_BLOCK {
                    lanes.qls[j] = if lanes.dls[j] > 0.0 {
                        lanes.qls[j]
                    } else {
                        f64::INFINITY
                    };
                }
            }
            if lanes.dus[0] <= 0.0 {
                for j in 0..DECIDE_BLOCK {
                    lanes.qus[j] = if lanes.dus[j] > 0.0 {
                        lanes.qus[j]
                    } else {
                        f64::INFINITY
                    };
                }
            }
            if h == 0 {
                // Bounds of lane 0 (the scalar loop's `h == 0` capture):
                // the running values start at 0 / +inf, and lane
                // quotients are positive or +inf, so the captured values
                // equal the quotients.
                st.lower0 = lanes.qls[0];
                st.upper0 = lanes.qus[0];
            }
            // The running bounds live in the same NaN-free, −0-free
            // domain (they start at +0 / +inf and only ever take lane
            // values), so the compare-select forms stay bit-identical
            // here too.
            let block_lower = sel_max(lower, fold_max8(&lanes.qls));
            let block_upper = sel_min(upper, fold_min8(&lanes.qus));
            if block_lower > block_upper {
                let lane = locate_crossing(lanes, lower, upper, st);
                return (h + lane + 1, true);
            }
            lower = block_lower;
            upper = block_upper;
            sum = lanes.sums[DECIDE_BLOCK - 1];
            h += DECIDE_BLOCK;
        }
        st.sum = sum;
        st.lower = lower;
        st.upper = upper;
        (h, false)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{locate_crossing, sel_max, sel_min, BlockLanes, BoundState, DECIDE_BLOCK};
    use std::arch::x86_64::*;

    /// Loads lanes `at..at + 2` of an 8-lane array.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn load2(a: &[f64; DECIDE_BLOCK], at: usize) -> __m128d {
        debug_assert!(at + 2 <= DECIDE_BLOCK);
        // SAFETY: `a` is 8 contiguous f64s and `at + 2 <= 8` at every
        // call site (asserted above), so the 16-byte unaligned read is
        // in bounds.
        unsafe { _mm_loadu_pd(a.as_ptr().add(at)) }
    }

    /// Stores `v` into lanes `at..at + 2` of an 8-lane array.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn store2(a: &mut [f64; DECIDE_BLOCK], at: usize, v: __m128d) {
        debug_assert!(at + 2 <= DECIDE_BLOCK);
        // SAFETY: as in `load2`, the 16-byte unaligned write is in
        // bounds.
        unsafe { _mm_storeu_pd(a.as_mut_ptr().add(at), v) }
    }

    /// Loads lanes `at..at + 4` of an 8-lane array.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load4(a: &[f64; DECIDE_BLOCK], at: usize) -> __m256d {
        debug_assert!(at + 4 <= DECIDE_BLOCK);
        // SAFETY: `a` is 8 contiguous f64s and `at + 4 <= 8` at every
        // call site (asserted above), so the 32-byte unaligned read is
        // in bounds.
        unsafe { _mm256_loadu_pd(a.as_ptr().add(at)) }
    }

    /// Stores `v` into lanes `at..at + 4` of an 8-lane array.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn store4(a: &mut [f64; DECIDE_BLOCK], at: usize, v: __m256d) {
        debug_assert!(at + 4 <= DECIDE_BLOCK);
        // SAFETY: as in `load4`, the 32-byte unaligned write is in
        // bounds.
        unsafe { _mm256_storeu_pd(a.as_mut_ptr().add(at), v) }
    }

    /// The 2-lane kernel. SSE2 is part of the x86-64 compilation
    /// baseline, so the `#[target_feature]` contract is vacuous — every
    /// x86-64 CPU satisfies it — but the attribute is still required for
    /// the intrinsics to be callable without per-call `unsafe`.
    ///
    /// Every arithmetic instruction mirrors one scalar-kernel operation
    /// with the same operand order: `divpd` is IEEE-exact per lane,
    /// `maxpd`/`minpd` implement the compare-select rule, and the
    /// and/andnot/or select matches the branchless +∞ substitution.
    /// The sequential prefix chain (`exact_prefix == false`) stays a
    /// scalar dependency chain by definition; only the Hillis–Steele
    /// scan (whose additions are exact by contract) runs packed.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "sse2")]
    pub(super) fn bound_blocks8_sse2(
        sizes_ahead: &[f64],
        i: usize,
        k: usize,
        tau: f64,
        d_bound: f64,
        time: f64,
        exact_prefix: bool,
        lanes: &mut BlockLanes,
        st: &mut BoundState,
    ) -> (usize, bool) {
        let len = sizes_ahead.len();
        let mut sum = st.sum;
        let mut lower = st.lower;
        let mut upper = st.upper;
        let mut h = 0usize;

        let zero = _mm_setzero_pd();
        let tau_v = _mm_set1_pd(tau);
        let time_v = _mm_set1_pd(time);
        let dbound_v = _mm_set1_pd(d_bound);
        let inf_v = _mm_set1_pd(f64::INFINITY);
        let j01 = _mm_setr_pd(0.0, 1.0);
        let j23 = _mm_setr_pd(2.0, 3.0);
        let j45 = _mm_setr_pd(4.0, 5.0);
        let j67 = _mm_setr_pd(6.0, 7.0);

        while len - h >= DECIDE_BLOCK {
            let sizes: &[f64; DECIDE_BLOCK] = sizes_ahead[h..h + DECIDE_BLOCK]
                .try_into()
                .expect("slice is exactly one block");
            let s0 = load2(sizes, 0);
            let s1 = load2(sizes, 2);
            let s2 = load2(sizes, 4);
            let s3 = load2(sizes, 6);
            let (sums0, sums1, sums2, sums3);
            if exact_prefix {
                // Hillis–Steele scan, association identical to the
                // scalar kernel (every addition exact by contract).
                // Stride 1: qls[j] = sizes[j-1] + sizes[j], with +0
                // shifted into lane 0 (x + 0 ≡ x on the nonnegative
                // domain).
                let q0 = _mm_add_pd(_mm_unpacklo_pd(zero, s0), s0);
                let q1 = _mm_add_pd(_mm_shuffle_pd(s0, s1, 0b01), s1);
                let q2 = _mm_add_pd(_mm_shuffle_pd(s1, s2, 0b01), s2);
                let q3 = _mm_add_pd(_mm_shuffle_pd(s2, s3, 0b01), s3);
                // Stride 2: qus[j] = qls[j-2] + qls[j].
                let u0 = q0;
                let u1 = _mm_add_pd(q0, q1);
                let u2 = _mm_add_pd(q1, q2);
                let u3 = _mm_add_pd(q2, q3);
                // Stride 4: sums[j] = sum + qus[j] (low half) and
                // sum + (qus[j-4] + qus[j]) (high half).
                let sum_v = _mm_set1_pd(sum);
                sums0 = _mm_add_pd(sum_v, u0);
                sums1 = _mm_add_pd(sum_v, u1);
                sums2 = _mm_add_pd(sum_v, _mm_add_pd(u0, u2));
                sums3 = _mm_add_pd(sum_v, _mm_add_pd(u1, u3));
            } else {
                // Strictly sequential chain — kept scalar on purpose;
                // reassociating it would change bits.
                let mut seq = [0.0f64; DECIDE_BLOCK];
                let mut s = sum;
                for (j, &size) in sizes.iter().enumerate().take(DECIDE_BLOCK) {
                    s += size;
                    seq[j] = s;
                }
                sums0 = load2(&seq, 0);
                sums1 = load2(&seq, 2);
                sums2 = load2(&seq, 4);
                sums3 = load2(&seq, 6);
            }
            let base_l = _mm_set1_pd((i + h) as f64);
            let base_u = _mm_set1_pd((i + h + k + 1) as f64);
            // r_L(h) denominators: d_bound + (base_l + j)·τ − time.
            let dls0 = _mm_sub_pd(
                _mm_add_pd(dbound_v, _mm_mul_pd(_mm_add_pd(base_l, j01), tau_v)),
                time_v,
            );
            let dls1 = _mm_sub_pd(
                _mm_add_pd(dbound_v, _mm_mul_pd(_mm_add_pd(base_l, j23), tau_v)),
                time_v,
            );
            let dls2 = _mm_sub_pd(
                _mm_add_pd(dbound_v, _mm_mul_pd(_mm_add_pd(base_l, j45), tau_v)),
                time_v,
            );
            let dls3 = _mm_sub_pd(
                _mm_add_pd(dbound_v, _mm_mul_pd(_mm_add_pd(base_l, j67), tau_v)),
                time_v,
            );
            // r_U(h) denominators: (base_u + j)·τ − time.
            let dus0 = _mm_sub_pd(_mm_mul_pd(_mm_add_pd(base_u, j01), tau_v), time_v);
            let dus1 = _mm_sub_pd(_mm_mul_pd(_mm_add_pd(base_u, j23), tau_v), time_v);
            let dus2 = _mm_sub_pd(_mm_mul_pd(_mm_add_pd(base_u, j45), tau_v), time_v);
            let dus3 = _mm_sub_pd(_mm_mul_pd(_mm_add_pd(base_u, j67), tau_v), time_v);
            // Unconditional packed divides (IEEE-exact per lane).
            let mut qls0 = _mm_div_pd(sums0, dls0);
            let mut qls1 = _mm_div_pd(sums1, dls1);
            let mut qls2 = _mm_div_pd(sums2, dls2);
            let mut qls3 = _mm_div_pd(sums3, dls3);
            let mut qus0 = _mm_div_pd(sums0, dus0);
            let mut qus1 = _mm_div_pd(sums1, dus1);
            let mut qus2 = _mm_div_pd(sums2, dus2);
            let mut qus3 = _mm_div_pd(sums3, dus3);
            // Branchless +∞ substitution for nonpositive denominators,
            // skippable when lane 0 is already positive (denominators
            // are nondecreasing in the lane index).
            if _mm_cvtsd_f64(dls0) <= 0.0 {
                let m0 = _mm_cmpgt_pd(dls0, zero);
                let m1 = _mm_cmpgt_pd(dls1, zero);
                let m2 = _mm_cmpgt_pd(dls2, zero);
                let m3 = _mm_cmpgt_pd(dls3, zero);
                qls0 = _mm_or_pd(_mm_and_pd(m0, qls0), _mm_andnot_pd(m0, inf_v));
                qls1 = _mm_or_pd(_mm_and_pd(m1, qls1), _mm_andnot_pd(m1, inf_v));
                qls2 = _mm_or_pd(_mm_and_pd(m2, qls2), _mm_andnot_pd(m2, inf_v));
                qls3 = _mm_or_pd(_mm_and_pd(m3, qls3), _mm_andnot_pd(m3, inf_v));
            }
            if _mm_cvtsd_f64(dus0) <= 0.0 {
                let m0 = _mm_cmpgt_pd(dus0, zero);
                let m1 = _mm_cmpgt_pd(dus1, zero);
                let m2 = _mm_cmpgt_pd(dus2, zero);
                let m3 = _mm_cmpgt_pd(dus3, zero);
                qus0 = _mm_or_pd(_mm_and_pd(m0, qus0), _mm_andnot_pd(m0, inf_v));
                qus1 = _mm_or_pd(_mm_and_pd(m1, qus1), _mm_andnot_pd(m1, inf_v));
                qus2 = _mm_or_pd(_mm_and_pd(m2, qus2), _mm_andnot_pd(m2, inf_v));
                qus3 = _mm_or_pd(_mm_and_pd(m3, qus3), _mm_andnot_pd(m3, inf_v));
            }
            if h == 0 {
                st.lower0 = _mm_cvtsd_f64(qls0);
                st.upper0 = _mm_cvtsd_f64(qus0);
            }
            // fold_max8's tree: [v0,v1]·[v4,v5] and [v2,v3]·[v6,v7],
            // then the halves, then the lane pair — `maxpd`'s src1
            // operand is always the tree's left argument.
            let mab = _mm_max_pd(qls0, qls2);
            let mcd = _mm_max_pd(qls1, qls3);
            let mx = _mm_max_pd(mab, mcd);
            let fold_max = _mm_cvtsd_f64(_mm_max_sd(mx, _mm_unpackhi_pd(mx, mx)));
            let nab = _mm_min_pd(qus0, qus2);
            let ncd = _mm_min_pd(qus1, qus3);
            let nx = _mm_min_pd(nab, ncd);
            let fold_min = _mm_cvtsd_f64(_mm_min_sd(nx, _mm_unpackhi_pd(nx, nx)));
            let block_lower = sel_max(lower, fold_max);
            let block_upper = sel_min(upper, fold_min);
            if block_lower > block_upper {
                // Cold path: park the lanes and defer to the shared
                // branchless locator.
                store2(&mut lanes.sums, 0, sums0);
                store2(&mut lanes.sums, 2, sums1);
                store2(&mut lanes.sums, 4, sums2);
                store2(&mut lanes.sums, 6, sums3);
                store2(&mut lanes.qls, 0, qls0);
                store2(&mut lanes.qls, 2, qls1);
                store2(&mut lanes.qls, 4, qls2);
                store2(&mut lanes.qls, 6, qls3);
                store2(&mut lanes.qus, 0, qus0);
                store2(&mut lanes.qus, 2, qus1);
                store2(&mut lanes.qus, 4, qus2);
                store2(&mut lanes.qus, 6, qus3);
                let lane = locate_crossing(lanes, lower, upper, st);
                return (h + lane + 1, true);
            }
            lower = block_lower;
            upper = block_upper;
            sum = _mm_cvtsd_f64(_mm_unpackhi_pd(sums3, sums3));
            h += DECIDE_BLOCK;
        }
        st.sum = sum;
        st.lower = lower;
        st.upper = upper;
        (h, false)
    }

    /// The 4-lane kernel; see [`bound_blocks8_sse2`] for the
    /// per-instruction equivalence argument. Cross-lane shuffles
    /// (`vpermpd`, `vperm2f128`) implement the Hillis–Steele shifts; the
    /// fold trees split the 8 lanes exactly as `fold_max8` does.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn bound_blocks8_avx2(
        sizes_ahead: &[f64],
        i: usize,
        k: usize,
        tau: f64,
        d_bound: f64,
        time: f64,
        exact_prefix: bool,
        lanes: &mut BlockLanes,
        st: &mut BoundState,
    ) -> (usize, bool) {
        let len = sizes_ahead.len();
        let mut sum = st.sum;
        let mut lower = st.lower;
        let mut upper = st.upper;
        let mut h = 0usize;

        let zero = _mm256_setzero_pd();
        let tau_v = _mm256_set1_pd(tau);
        let time_v = _mm256_set1_pd(time);
        let dbound_v = _mm256_set1_pd(d_bound);
        let inf_v = _mm256_set1_pd(f64::INFINITY);
        let jlo = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
        let jhi = _mm256_setr_pd(4.0, 5.0, 6.0, 7.0);

        while len - h >= DECIDE_BLOCK {
            let sizes: &[f64; DECIDE_BLOCK] = sizes_ahead[h..h + DECIDE_BLOCK]
                .try_into()
                .expect("slice is exactly one block");
            let s_lo = load4(sizes, 0);
            let s_hi = load4(sizes, 4);
            let (sums_lo, sums_hi);
            if exact_prefix {
                // Stride 1: [0,s0,s1,s2] and [s3,s4,s5,s6] shifted in.
                let rot_lo = _mm256_permute4x64_pd(s_lo, 0b10_01_00_00);
                let prev_lo = _mm256_blend_pd(rot_lo, zero, 0b0001);
                let rot_hi = _mm256_permute4x64_pd(s_hi, 0b10_01_00_11);
                let s3_b = _mm256_permute4x64_pd(s_lo, 0b11_11_11_11);
                let prev_hi = _mm256_blend_pd(rot_hi, s3_b, 0b0001);
                let qls_lo = _mm256_add_pd(prev_lo, s_lo);
                let qls_hi = _mm256_add_pd(prev_hi, s_hi);
                // Stride 2: [0,0,q0,q1] and [q2,q3,q4,q5] shifted in.
                let rot2_lo = _mm256_permute4x64_pd(qls_lo, 0b01_00_00_00);
                let prev2_lo = _mm256_blend_pd(rot2_lo, zero, 0b0011);
                let prev2_hi = _mm256_permute2f128_pd(qls_lo, qls_hi, 0x21);
                let qus_lo = _mm256_add_pd(prev2_lo, qls_lo);
                let qus_hi = _mm256_add_pd(prev2_hi, qls_hi);
                // Stride 4.
                let sum_v = _mm256_set1_pd(sum);
                sums_lo = _mm256_add_pd(sum_v, qus_lo);
                sums_hi = _mm256_add_pd(sum_v, _mm256_add_pd(qus_lo, qus_hi));
            } else {
                // Strictly sequential chain — kept scalar on purpose.
                let mut seq = [0.0f64; DECIDE_BLOCK];
                let mut s = sum;
                for (j, &size) in sizes.iter().enumerate().take(DECIDE_BLOCK) {
                    s += size;
                    seq[j] = s;
                }
                sums_lo = load4(&seq, 0);
                sums_hi = load4(&seq, 4);
            }
            let base_l = _mm256_set1_pd((i + h) as f64);
            let base_u = _mm256_set1_pd((i + h + k + 1) as f64);
            let dls_lo = _mm256_sub_pd(
                _mm256_add_pd(dbound_v, _mm256_mul_pd(_mm256_add_pd(base_l, jlo), tau_v)),
                time_v,
            );
            let dls_hi = _mm256_sub_pd(
                _mm256_add_pd(dbound_v, _mm256_mul_pd(_mm256_add_pd(base_l, jhi), tau_v)),
                time_v,
            );
            let dus_lo = _mm256_sub_pd(_mm256_mul_pd(_mm256_add_pd(base_u, jlo), tau_v), time_v);
            let dus_hi = _mm256_sub_pd(_mm256_mul_pd(_mm256_add_pd(base_u, jhi), tau_v), time_v);
            let mut qls_lo = _mm256_div_pd(sums_lo, dls_lo);
            let mut qls_hi = _mm256_div_pd(sums_hi, dls_hi);
            let mut qus_lo = _mm256_div_pd(sums_lo, dus_lo);
            let mut qus_hi = _mm256_div_pd(sums_hi, dus_hi);
            if _mm256_cvtsd_f64(dls_lo) <= 0.0 {
                let m_lo = _mm256_cmp_pd::<_CMP_GT_OQ>(dls_lo, zero);
                let m_hi = _mm256_cmp_pd::<_CMP_GT_OQ>(dls_hi, zero);
                qls_lo = _mm256_blendv_pd(inf_v, qls_lo, m_lo);
                qls_hi = _mm256_blendv_pd(inf_v, qls_hi, m_hi);
            }
            if _mm256_cvtsd_f64(dus_lo) <= 0.0 {
                let m_lo = _mm256_cmp_pd::<_CMP_GT_OQ>(dus_lo, zero);
                let m_hi = _mm256_cmp_pd::<_CMP_GT_OQ>(dus_hi, zero);
                qus_lo = _mm256_blendv_pd(inf_v, qus_lo, m_lo);
                qus_hi = _mm256_blendv_pd(inf_v, qus_hi, m_hi);
            }
            if h == 0 {
                st.lower0 = _mm256_cvtsd_f64(qls_lo);
                st.upper0 = _mm256_cvtsd_f64(qus_lo);
            }
            // fold_max8's tree: lanes 0..3 against 4..7, then the
            // 128-bit halves, then the lane pair.
            let m = _mm256_max_pd(qls_lo, qls_hi);
            let m128 = _mm_max_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd(m, 1));
            let fold_max = _mm_cvtsd_f64(_mm_max_sd(m128, _mm_unpackhi_pd(m128, m128)));
            let n = _mm256_min_pd(qus_lo, qus_hi);
            let n128 = _mm_min_pd(_mm256_castpd256_pd128(n), _mm256_extractf128_pd(n, 1));
            let fold_min = _mm_cvtsd_f64(_mm_min_sd(n128, _mm_unpackhi_pd(n128, n128)));
            let block_lower = sel_max(lower, fold_max);
            let block_upper = sel_min(upper, fold_min);
            if block_lower > block_upper {
                store4(&mut lanes.sums, 0, sums_lo);
                store4(&mut lanes.sums, 4, sums_hi);
                store4(&mut lanes.qls, 0, qls_lo);
                store4(&mut lanes.qls, 4, qls_hi);
                store4(&mut lanes.qus, 0, qus_lo);
                store4(&mut lanes.qus, 4, qus_hi);
                let lane = locate_crossing(lanes, lower, upper, st);
                return (h + lane + 1, true);
            }
            lower = block_lower;
            upper = block_upper;
            let hi128 = _mm256_extractf128_pd(sums_hi, 1);
            sum = _mm_cvtsd_f64(_mm_unpackhi_pd(hi128, hi128));
            h += DECIDE_BLOCK;
        }
        st.sum = sum;
        st.lower = lower;
        st.upper = upper;
        (h, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_supports_clamping() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
        assert_eq!(SimdLevel::Avx2.min(SimdLevel::Sse2), SimdLevel::Sse2);
    }

    #[test]
    fn available_levels_always_include_scalar() {
        let levels = available_levels();
        assert_eq!(levels[0], SimdLevel::Scalar);
        #[cfg(target_arch = "x86_64")]
        assert!(levels.contains(&SimdLevel::Sse2));
    }

    #[test]
    fn kernels_agree_on_a_smoke_block() {
        // One 16-step window: every available kernel must produce the
        // same exit state bit for bit, exact and sequential prefix
        // alike. (The full schedule-level pinning lives in the
        // `simd_props` integration tests.)
        let sizes: Vec<f64> = (0..16).map(|j| 16_000.0 + 1_000.0 * j as f64).collect();
        for &exact in &[false, true] {
            let mut want = None;
            for level in available_levels() {
                let mut lanes = BlockLanes::default();
                let got = bound_blocks8_at_level(
                    level,
                    &sizes,
                    3,
                    1,
                    1.0 / 30.0,
                    0.2,
                    0.1334,
                    exact,
                    &mut lanes,
                )
                .expect("level is available");
                let key = (
                    got.0,
                    got.1,
                    got.2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                );
                match &want {
                    None => want = Some(key),
                    Some(w) => assert_eq!(w, &key, "level {level:?} diverged (exact={exact})"),
                }
            }
        }
    }
}
