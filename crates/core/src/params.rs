//! Algorithm parameters `(D, K, H)` and their feasibility conditions.
//!
//! The paper characterizes the algorithm by three parameters (§4.1):
//!
//! * `D` — the delay bound, in seconds, that every picture must satisfy;
//! * `K` — the number of complete pictures that must be buffered before the
//!   server may begin sending the next picture. Theorem 1 guarantees the
//!   delay bound if and only if `K ≥ 1`;
//! * `H` — the lookahead interval, in pictures, over which rate bounds are
//!   intersected to reduce the number of rate changes.
//!
//! Feasibility (paper eq. (1)): `D ≥ (K + 1)·τ`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing [`SmootherParams`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// τ must be positive and finite.
    BadTau {
        /// Offending value.
        tau: f64,
    },
    /// D must be positive and finite.
    BadDelayBound {
        /// Offending value.
        d: f64,
    },
    /// H must be at least 1 (the algorithm always examines picture `i`
    /// itself).
    ZeroH,
    /// `D < (K + 1)·τ` — the delay bound cannot be satisfied
    /// (paper eq. (1)).
    Infeasible {
        /// Requested delay bound.
        d: f64,
        /// Minimum feasible bound `(K + 1)·τ`.
        minimum: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::BadTau { tau } => write!(f, "picture period {tau} must be positive"),
            ParamError::BadDelayBound { d } => write!(f, "delay bound {d} must be positive"),
            ParamError::ZeroH => write!(f, "lookahead H must be at least 1"),
            ParamError::Infeasible { d, minimum } => {
                write!(
                    f,
                    "delay bound {d} < (K+1)·tau = {minimum}: infeasible (paper eq. (1))"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Validated smoothing parameters.
///
/// Construct via [`SmootherParams::new`], which enforces eq. (1), or
/// [`SmootherParams::new_unchecked`] for deliberately infeasible
/// experiments (e.g. demonstrating delay violations at `K = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmootherParams {
    /// Delay bound `D` in seconds.
    pub delay_bound: f64,
    /// Pictures with known sizes before sending starts (`K`).
    pub k: usize,
    /// Lookahead interval in pictures (`H ≥ 1`).
    pub h: usize,
    /// Picture period τ in seconds (1/30 for all paper experiments).
    pub tau: f64,
    /// Optional rate granularity in bits/second: real channels allocate
    /// discrete rates (the H.261/ISDN world signalled `p × 64 kbit/s`).
    /// When set, each selected rate is snapped to a multiple of this
    /// grid *within the Theorem 1 bounds* — rounding up when the rounded
    /// rate still respects `r_U`, otherwise down, otherwise left exact —
    /// so the delay bound is never endangered. `None` (the default)
    /// reproduces the paper exactly.
    #[serde(default)]
    pub rate_grid_bps: Option<f64>,
}

impl SmootherParams {
    /// Creates validated parameters.
    pub fn new(delay_bound: f64, k: usize, h: usize, tau: f64) -> Result<Self, ParamError> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(ParamError::BadTau { tau });
        }
        if !(delay_bound.is_finite() && delay_bound > 0.0) {
            return Err(ParamError::BadDelayBound { d: delay_bound });
        }
        if h == 0 {
            return Err(ParamError::ZeroH);
        }
        let minimum = (k as f64 + 1.0) * tau;
        if delay_bound < minimum - 1e-12 {
            return Err(ParamError::Infeasible {
                d: delay_bound,
                minimum,
            });
        }
        Ok(SmootherParams {
            delay_bound,
            k,
            h,
            tau,
            rate_grid_bps: None,
        })
    }

    /// Creates parameters without the eq. (1) feasibility check (τ and D
    /// must still be positive). Useful for studying violations.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `delay_bound` is non-positive/non-finite or if
    /// `h == 0`.
    pub fn new_unchecked(delay_bound: f64, k: usize, h: usize, tau: f64) -> Self {
        assert!(tau.is_finite() && tau > 0.0, "bad tau {tau}");
        assert!(
            delay_bound.is_finite() && delay_bound > 0.0,
            "bad delay bound {delay_bound}"
        );
        assert!(h >= 1, "H must be >= 1");
        SmootherParams {
            delay_bound,
            k,
            h,
            tau,
            rate_grid_bps: None,
        }
    }

    /// Returns a copy with rate selections snapped to multiples of
    /// `grid_bps` (e.g. `64_000.0` for p x 64 kbit/s channels).
    ///
    /// # Panics
    ///
    /// Panics if `grid_bps` is not positive and finite.
    pub fn with_rate_grid(mut self, grid_bps: f64) -> Self {
        assert!(
            grid_bps.is_finite() && grid_bps > 0.0,
            "bad rate grid {grid_bps}"
        );
        self.rate_grid_bps = Some(grid_bps);
        self
    }

    /// Parameters at 30 pictures/s — the rate of every paper experiment.
    pub fn at_30fps(delay_bound: f64, k: usize, h: usize) -> Result<Self, ParamError> {
        Self::new(delay_bound, k, h, 1.0 / 30.0)
    }

    /// The paper's recommended configuration (§6): `K = 1`, `H = N`,
    /// `D = 0.2 s`.
    pub fn recommended(n: usize) -> Self {
        Self::at_30fps(0.2, 1, n).expect("0.2 s >= 2/30 s")
    }

    /// The constant-slack parameterization of Figures 5 (right) and 8:
    /// `D = slack + (K + 1)·τ` with `slack = 0.1333 s`.
    pub fn constant_slack(k: usize, h: usize, tau: f64) -> Self {
        let d = 0.1333 + (k as f64 + 1.0) * tau;
        Self::new(d, k, h, tau).expect("constant-slack D is feasible by construction")
    }

    /// Start of service for picture `i` given the previous departure
    /// `d_{i−1}` — eq. (2): `t_i = max(d_{i−1}, (i + K)·τ)`.
    ///
    /// The one source of truth for this formula: the offline smoother,
    /// the online smoother, the adaptive smoother, and `decide_one` all
    /// obtain `t_i` here instead of re-deriving it.
    ///
    /// Computed as a compare-select rather than `f64::max`: both
    /// operands are nonnegative (departures and `(i+K)·τ` with `τ > 0`)
    /// and never NaN, so the two agree bit for bit while the
    /// compare-select avoids `f64::max`'s NaN/−0 fixup instructions in
    /// the per-picture path.
    #[inline]
    pub fn start_time(&self, i: usize, prev_depart: f64) -> f64 {
        let earliest = (i + self.k) as f64 * self.tau;
        if prev_depart > earliest {
            prev_depart
        } else {
            earliest
        }
    }

    /// Slack above the feasibility minimum: `D − (K + 1)·τ`.
    pub fn slack(&self) -> f64 {
        self.delay_bound - (self.k as f64 + 1.0) * self.tau
    }

    /// `true` if eq. (1) holds.
    pub fn is_feasible(&self) -> bool {
        self.slack() >= -1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = 1.0 / 30.0;

    #[test]
    fn accepts_paper_recommended() {
        let p = SmootherParams::recommended(9);
        assert_eq!(p.k, 1);
        assert_eq!(p.h, 9);
        assert!((p.delay_bound - 0.2).abs() < 1e-12);
        assert!(p.is_feasible());
    }

    #[test]
    fn rejects_infeasible_eq1() {
        // K = 5 needs D >= 6/30 = 0.2.
        let err = SmootherParams::at_30fps(0.19, 5, 9).unwrap_err();
        assert!(matches!(err, ParamError::Infeasible { .. }));
        // Exactly at the boundary is allowed.
        assert!(SmootherParams::at_30fps(0.2, 5, 9).is_ok());
    }

    #[test]
    fn rejects_degenerate_values() {
        assert!(matches!(
            SmootherParams::new(0.2, 1, 9, 0.0),
            Err(ParamError::BadTau { .. })
        ));
        assert!(matches!(
            SmootherParams::new(0.2, 1, 9, f64::NAN),
            Err(ParamError::BadTau { .. })
        ));
        assert!(matches!(
            SmootherParams::new(-0.1, 1, 9, TAU),
            Err(ParamError::BadDelayBound { .. })
        ));
        assert!(matches!(
            SmootherParams::new(0.2, 1, 0, TAU),
            Err(ParamError::ZeroH)
        ));
    }

    #[test]
    fn unchecked_allows_infeasible() {
        let p = SmootherParams::new_unchecked(0.04, 0, 9, TAU);
        assert!(p.is_feasible()); // K=0: minimum is tau = 0.0333
        let p2 = SmootherParams::new_unchecked(0.02, 0, 9, TAU);
        assert!(!p2.is_feasible());
    }

    #[test]
    #[should_panic(expected = "bad tau")]
    fn unchecked_still_rejects_zero_tau() {
        SmootherParams::new_unchecked(0.2, 1, 9, 0.0);
    }

    #[test]
    fn constant_slack_parameterization() {
        for k in 1..=12 {
            let p = SmootherParams::constant_slack(k, 9, TAU);
            assert!((p.slack() - 0.1333).abs() < 1e-12, "k={k}");
            assert!(p.is_feasible());
        }
    }

    #[test]
    fn slack_formula() {
        let p = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        assert!((p.slack() - (0.2 - 2.0 / 30.0)).abs() < 1e-12);
    }
}
