//! Picture-size estimators.
//!
//! At time `t_i` the algorithm knows the exact sizes of pictures
//! `i .. i+K−1` (that is what `K` means) but must *estimate* the sizes of
//! later pictures for its lookahead bounds. Theorem 1 only requires `S_i`
//! to be exact, so estimates may be arbitrarily wrong without endangering
//! the delay bound (paper §4.3) — they only affect smoothness.
//!
//! The paper's estimator exploits the repeating pattern: pictures `j` and
//! `j − N` have the same type, so `S_j ≈ S_{j−N}` unless a scene change
//! intervenes; before `j − N` exists, fixed per-type defaults are used
//! (§4.4: 200,000 / 100,000 / 20,000 bits for I / P / B — "far from being
//! accurate for some video sequences. But by Theorem 1, they do not need
//! to be accurate").

use smooth_mpeg::{GopPattern, PictureType};

/// Default cold-start estimates from the paper (§4.4), in bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefaultSizes {
    /// Estimate for I pictures.
    pub i_bits: f64,
    /// Estimate for P pictures.
    pub p_bits: f64,
    /// Estimate for B pictures.
    pub b_bits: f64,
}

impl DefaultSizes {
    /// The paper's values: I = 200,000, P = 100,000, B = 20,000 bits.
    pub const PAPER: DefaultSizes = DefaultSizes {
        i_bits: 200_000.0,
        p_bits: 100_000.0,
        b_bits: 20_000.0,
    };

    /// Default for the given type.
    pub fn for_type(&self, t: PictureType) -> f64 {
        match t {
            PictureType::I => self.i_bits,
            PictureType::P => self.p_bits,
            PictureType::B => self.b_bits,
        }
    }

    /// `Some(max default)` when every default is a nonnegative finite
    /// integer-valued `f64` — the precondition estimators built on these
    /// defaults need for [`SizeEstimator::integral_estimates`].
    pub fn integral_bound(&self) -> Option<f64> {
        let vals = [self.i_bits, self.p_bits, self.b_bits];
        if vals
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
        {
            Some(vals.iter().copied().fold(0.0, f64::max))
        } else {
            None
        }
    }
}

/// How an estimator's output for a fixed picture `j` can change as the
/// arrived prefix grows — the contract the incremental
/// [`crate::lookahead::LookaheadWindow`] uses to decide which cached
/// estimates to recompute when the arrived-watermark advances.
///
/// Declaring a variant is a promise about [`SizeEstimator::estimate`]: the
/// window engine will *not* recompute estimates the variant marks as
/// unchanged, so an estimator whose output shifts more often than declared
/// would silently produce schedules that differ from a naive per-picture
/// refill. When in doubt, keep the conservative default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invalidation {
    /// `estimate(j, arrived, …)` may change whenever `arrived` grows at
    /// all. The engine re-estimates every unresolved slot each time the
    /// watermark advances — always correct, never faster than necessary.
    OnAnyArrival,
    /// `estimate(j, arrived, …)` changes only when a picture `x` with
    /// `x ≡ j (mod N)` joins `arrived` (the paper's pattern estimator:
    /// only a same-GOP-slot arrival can become the new `S_{j−mN}`
    /// source). The engine re-estimates only slots sharing a GOP slot
    /// with a newly arrived picture.
    ///
    /// This variant additionally promises that unresolved slots of one
    /// GOP slot all estimate to the **same value**: `estimate(j) ==
    /// estimate(j′)` whenever `j ≡ j′ (mod N)` and both are at or beyond
    /// the arrived prefix. The paper's rule has this shape inherently —
    /// the estimate is the most recent same-slot arrival, or a per-type
    /// default, both functions of the GOP slot alone — and the window
    /// engine exploits it by estimating each affected slot class once
    /// per arrival instead of once per slot.
    OnSameSlotArrival,
    /// `estimate(j, arrived, …)` never depends on `arrived` (oracle and
    /// fixed-default estimators). Cached estimates are never recomputed.
    Never,
}

/// A size estimator consulted for pictures that have not yet arrived.
///
/// `arrived` holds the exact sizes of every picture that has completely
/// arrived at estimation time (`arrived[x]` = size of display picture `x`,
/// for `x < arrived.len()`); `j ≥ arrived.len()` is the picture being
/// estimated.
pub trait SizeEstimator {
    /// Estimated size of picture `j`, in bits.
    fn estimate(&self, j: usize, arrived: &[u64], pattern: &GopPattern) -> f64;

    /// Short name for reports and ablation tables.
    fn name(&self) -> &'static str;

    /// When cached estimates must be recomputed (see [`Invalidation`]).
    /// The default is the always-correct [`Invalidation::OnAnyArrival`].
    fn invalidation(&self) -> Invalidation {
        Invalidation::OnAnyArrival
    }

    /// Opt-in contract for the smoother's order-free prefix-sum fast
    /// path. Return `Some(m)` **only if** every value [`estimate`]
    /// (Self::estimate) can return is a nonnegative *integer-valued*
    /// `f64` that is either one of the arrived sizes (`arrived[x] as
    /// f64`) or an integral constant at most `m`.
    ///
    /// When all lookahead slots are integer-valued and partial sums stay
    /// below 2⁵³, IEEE additions of those values are exact, so the
    /// smoother may reassociate its prefix sums (shorter dependency
    /// chains) without changing a single output bit. The default `None`
    /// keeps the strictly sequential summation.
    fn integral_estimates(&self) -> Option<f64> {
        None
    }

    /// Opt-in contract for history compaction in long-lived live
    /// sessions ([`crate::OnlineSmoother`] and the session engine).
    ///
    /// Returning `Some(w)` promises **shift invariance under pruning**:
    /// for every shift `Δ` that is a multiple of the GOP period `N` with
    /// `Δ + w ≤ arrived.len()`, and every `j ≥ arrived.len()`,
    ///
    /// ```text
    /// estimate(j, arrived, pattern)
    ///     == estimate(j − Δ, &arrived[Δ..], pattern)   // bit for bit
    /// ```
    ///
    /// i.e. the estimate depends only on `j`'s GOP slot and the trailing
    /// `w` arrived sizes, so a live session may drop its decided prefix
    /// (in whole-pattern steps) and keep only the last `w` sizes plus the
    /// undecided tail. The default `None` makes no such promise and
    /// forces full history — always correct, unbounded memory.
    fn history_window(&self, pattern: &GopPattern) -> Option<usize> {
        let _ = pattern;
        None
    }
}

/// The paper's estimator: `S_j ≈ S_{j−N}` (same picture type one pattern
/// back), walking back additional whole patterns if `j − N` has itself not
/// arrived, with per-type defaults at the start of the sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternEstimator {
    /// Cold-start defaults.
    pub defaults: DefaultSizes,
}

impl Default for PatternEstimator {
    fn default() -> Self {
        PatternEstimator {
            defaults: DefaultSizes::PAPER,
        }
    }
}

impl SizeEstimator for PatternEstimator {
    /// O(1): the walk-back loop (`back = j − N, j − 2N, …` until an
    /// arrived picture is hit) visits exactly the indices congruent to
    /// `j (mod N)` that lie at least one pattern before `j`, and returns
    /// the **largest** one below `arrived.len()`. That index — the most
    /// recent arrived picture in `j`'s GOP slot — has a closed form, so
    /// no walk proportional to `j` is ever needed. The retained walk-back
    /// loop ([`crate::reference::walk_back_estimate`]) is the reference
    /// oracle the proptests compare against.
    ///
    /// Hot-path detail: the smoother only asks about slots at most a
    /// lookahead window past the arrived prefix, so the answer is
    /// usually a handful of patterns back. A bounded subtraction walk
    /// covers that for the cost of a few integer subtractions; the
    /// division-based closed form is kept for far-away queries, keeping
    /// the worst case O(1).
    fn estimate(&self, j: usize, arrived: &[u64], pattern: &GopPattern) -> f64 {
        let n = pattern.n();
        if j >= n && !arrived.is_empty() {
            // Largest index ≡ j (mod N) that is both ≤ j − N (at least
            // one whole pattern back) and < arrived.len() (arrived).
            let cap = (j - n).min(arrived.len() - 1);
            if j - cap <= 8 * n {
                let mut back = j - n;
                loop {
                    if back <= cap {
                        return arrived[back] as f64;
                    }
                    if back < n {
                        // back ≡ j (mod N) and back > cap: no arrived
                        // same-slot sample exists.
                        break;
                    }
                    back -= n;
                }
            } else {
                let slot = j % n;
                if cap >= slot {
                    let back = cap - (cap - slot) % n;
                    return arrived[back] as f64;
                }
            }
        }
        self.defaults.for_type(pattern.type_at(j))
    }

    fn name(&self) -> &'static str {
        "pattern"
    }

    fn invalidation(&self) -> Invalidation {
        // S_j is sourced from the most recent arrived picture of j's GOP
        // slot: only a same-slot arrival can change it.
        Invalidation::OnSameSlotArrival
    }

    fn integral_estimates(&self) -> Option<f64> {
        // Estimates are either `arrived[back] as f64` or one of the
        // defaults, so the contract holds exactly when the defaults are
        // integral.
        self.defaults.integral_bound()
    }

    fn history_window(&self, pattern: &GopPattern) -> Option<usize> {
        // For `j ≥ arrived.len()` the source index `cap − (cap − slot) % N`
        // with `cap = (j − N).min(len − 1)` always lies in
        // `[len − (2N − 1), len − 1]`: the most recent same-slot sample at
        // least one whole pattern back. The last `2N` sizes therefore pin
        // every reachable read, and a whole-pattern shift preserves slots,
        // distances, and the walk-back arithmetic exactly.
        Some(2 * pattern.n())
    }
}

/// Always returns the per-type default — an ablation showing how much the
/// pattern memory buys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeDefaultEstimator {
    /// The per-type constants returned.
    pub defaults: DefaultSizes,
}

impl Default for TypeDefaultEstimator {
    fn default() -> Self {
        TypeDefaultEstimator {
            defaults: DefaultSizes::PAPER,
        }
    }
}

impl SizeEstimator for TypeDefaultEstimator {
    fn estimate(&self, j: usize, _arrived: &[u64], pattern: &GopPattern) -> f64 {
        self.defaults.for_type(pattern.type_at(j))
    }

    fn name(&self) -> &'static str {
        "type-default"
    }

    fn invalidation(&self) -> Invalidation {
        Invalidation::Never
    }

    fn history_window(&self, _pattern: &GopPattern) -> Option<usize> {
        // Reads nothing from `arrived`, and `type_at(j − Δ) == type_at(j)`
        // for any whole-pattern Δ.
        Some(0)
    }
}

/// An oracle with the full trace: returns exact sizes for pictures that
/// have not arrived. Models Ott et al.'s assumption that all sizes are
/// known a priori (paper §6) within this algorithm's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleEstimator {
    /// The complete size sequence.
    pub sizes: Vec<u64>,
}

impl SizeEstimator for OracleEstimator {
    fn estimate(&self, j: usize, _arrived: &[u64], pattern: &GopPattern) -> f64 {
        match self.sizes.get(j) {
            Some(&s) => s as f64,
            // Beyond the known trace, fall back to the pattern default.
            None => DefaultSizes::PAPER.for_type(pattern.type_at(j)),
        }
    }

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn invalidation(&self) -> Invalidation {
        Invalidation::Never
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat9() -> GopPattern {
        GopPattern::new(3, 9).unwrap()
    }

    #[test]
    fn pattern_estimator_uses_one_pattern_back() {
        let est = PatternEstimator::default();
        let arrived: Vec<u64> = (0..12).map(|i| 1000 * (i as u64 + 1)).collect();
        // Picture 13 (a B at slot 4): one pattern back is picture 4,
        // arrived with size 5000.
        assert_eq!(est.estimate(13, &arrived, &pat9()), 5000.0);
        // Picture 9 (an I): one back is picture 0, size 1000.
        assert_eq!(est.estimate(9, &arrived, &pat9()), 1000.0);
    }

    #[test]
    fn pattern_estimator_walks_back_multiple_patterns() {
        let est = PatternEstimator::default();
        let arrived: Vec<u64> = vec![7000; 5]; // only pictures 0..4 arrived
                                               // Picture 22 (slot 4): 22-9=13 not arrived, 13-9=4 arrived.
        assert_eq!(est.estimate(22, &arrived, &pat9()), 7000.0);
    }

    #[test]
    fn pattern_estimator_cold_start_defaults() {
        // Paper §4.4: I=200k, P=100k, B=20k before history exists.
        let est = PatternEstimator::default();
        let arrived: Vec<u64> = vec![];
        assert_eq!(est.estimate(0, &arrived, &pat9()), 200_000.0); // I
        assert_eq!(est.estimate(3, &arrived, &pat9()), 100_000.0); // P
        assert_eq!(est.estimate(1, &arrived, &pat9()), 20_000.0); // B
                                                                  // Second pattern, still nothing arrived: defaults again.
        assert_eq!(est.estimate(9, &arrived, &pat9()), 200_000.0);
        assert_eq!(est.estimate(12, &arrived, &pat9()), 100_000.0);
    }

    #[test]
    fn pattern_estimator_same_type_invariant() {
        // Whatever it returns is derived from a picture of the same type.
        let est = PatternEstimator::default();
        let pat = pat9();
        let arrived: Vec<u64> = (0..20).map(|i| 100 + i as u64).collect();
        for j in 20..60 {
            let e = est.estimate(j, &arrived, &pat);
            // Find which arrived picture it came from (if any).
            let src = (0..arrived.len()).find(|&x| arrived[x] as f64 == e);
            if let Some(x) = src {
                assert_eq!(pat.type_at(x), pat.type_at(j), "j={j} sourced from {x}");
            }
        }
    }

    #[test]
    fn type_default_ignores_history() {
        let est = TypeDefaultEstimator::default();
        let arrived: Vec<u64> = vec![999_999; 30];
        assert_eq!(est.estimate(36, &arrived, &pat9()), 200_000.0);
        assert_eq!(est.estimate(39, &arrived, &pat9()), 100_000.0);
        assert_eq!(est.estimate(37, &arrived, &pat9()), 20_000.0);
    }

    #[test]
    fn oracle_returns_truth() {
        let est = OracleEstimator {
            sizes: vec![11, 22, 33],
        };
        assert_eq!(est.estimate(0, &[], &pat9()), 11.0);
        assert_eq!(est.estimate(2, &[], &pat9()), 33.0);
        // Past the end: type default.
        assert_eq!(est.estimate(9, &[], &pat9()), 200_000.0);
    }

    #[test]
    fn history_window_shift_invariance() {
        // The `history_window` contract, checked exhaustively on a small
        // grid: for every whole-pattern shift Δ keeping ≥ w sizes, the
        // shifted estimate is bit-identical.
        let pat = pat9();
        let n = pat.n();
        let est = PatternEstimator::default();
        let w = est.history_window(&pat).unwrap();
        assert_eq!(w, 2 * n);
        let arrived: Vec<u64> = (0..64).map(|i| 1_000 + 37 * i as u64).collect();
        for len in 1..=arrived.len() {
            let full = &arrived[..len];
            for j in len..len + 3 * n {
                let base = est.estimate(j, full, &pat);
                let mut delta = n;
                while delta + w <= len {
                    let shifted = est.estimate(j - delta, &full[delta..], &pat);
                    assert_eq!(
                        base.to_bits(),
                        shifted.to_bits(),
                        "len={len} j={j} delta={delta}"
                    );
                    delta += n;
                }
            }
        }

        let td = TypeDefaultEstimator::default();
        assert_eq!(td.history_window(&pat), Some(0));
        for j in 10..40 {
            assert_eq!(
                td.estimate(j, &arrived, &pat),
                td.estimate(j - n, &[], &pat)
            );
        }

        // The oracle indexes absolutely: no compaction promise.
        assert_eq!(OracleEstimator { sizes: vec![] }.history_window(&pat), None);
    }

    #[test]
    fn names() {
        assert_eq!(PatternEstimator::default().name(), "pattern");
        assert_eq!(TypeDefaultEstimator::default().name(), "type-default");
        assert_eq!(OracleEstimator { sizes: vec![] }.name(), "oracle");
    }
}
