//! A-priori optimal smoothing in the style of Ott, Lakshman & Tabatabai
//! (paper reference \[8\]): all picture sizes known in advance.
//!
//! With full knowledge, the minimum-variability transmission schedule is
//! the **taut string** threaded between two cumulative staircases:
//!
//! * the *ceiling* `U(t)` — bits that have arrived by `t` (causality:
//!   picture `j` is fully available at `(j+1)τ`), and
//! * the *floor* `L(t)` — bits that must have departed by `t` (deadline:
//!   picture `j` must be out by `jτ + D`).
//!
//! Pulling a string taut from `(0, 0)` to `(T, total)` between the two
//! curves yields the piecewise-linear cumulative schedule with the fewest,
//! gentlest slope changes — simultaneously minimizing the peak rate and
//! the total rate variation. The paper contrasts its online algorithm
//! against exactly this "picture sizes known a priori" regime (§1, §6).
//!
//! This implementation is `O(n²)` in the worst case (string re-scan after
//! each bend), which is instantaneous at trace scale (hundreds of
//! pictures) and keeps the algorithm readable.

use crate::baseline::{BaselineResult, BaselineSchedule};
use crate::smoother::RateSegment;
use smooth_trace::VideoTrace;
use std::fmt;

/// Errors from the a-priori smoother.
#[derive(Debug, Clone, PartialEq)]
pub enum OttError {
    /// `D ≤ τ`: picture `j` is due at `jτ + D` at (or before) the instant
    /// `(j+1)τ` it finishes arriving, which would require instantaneous
    /// transmission.
    DelayTooSmall {
        /// Requested bound.
        d: f64,
        /// Picture period.
        tau: f64,
    },
    /// Empty trace.
    EmptyTrace,
}

impl fmt::Display for OttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OttError::DelayTooSmall { d, tau } => {
                write!(
                    f,
                    "delay bound {d} below one picture period {tau}: infeasible"
                )
            }
            OttError::EmptyTrace => write!(f, "cannot smooth an empty trace"),
        }
    }
}

impl std::error::Error for OttError {}

/// A time point carrying the binding one-sided constraints.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    t: f64,
    /// Cumulative bits that must have been sent by `t` (max over floors).
    floor: f64,
    /// Cumulative bits that may have been sent by `t` (min over ceilings).
    ceil: f64,
}

/// Builds the merged, time-sorted constraint list (see module docs).
fn constraints(sizes: &[u64], tau: f64, d: f64) -> Vec<Constraint> {
    let n = sizes.len();
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    for &s in sizes {
        prefix.push(prefix.last().expect("non-empty") + s as f64);
    }
    let total = prefix[n];
    let t_end = (n as f64 - 1.0) * tau + d;

    // (time, floor?, ceil?) raw events.
    let mut events: Vec<(f64, Option<f64>, Option<f64>)> = Vec::with_capacity(2 * n + 1);
    for j in 0..n {
        // Ceiling corner just before arrival (j+1)τ: at most prefix(j)
        // bits may have been sent.
        events.push(((j as f64 + 1.0) * tau, None, Some(prefix[j])));
        // Floor corner at deadline jτ + D: at least prefix(j+1) bits must
        // have been sent.
        events.push((j as f64 * tau + d, Some(prefix[j + 1]), None));
    }
    // Terminal point: exactly `total` bits at T.
    events.push((t_end, Some(total), Some(total)));

    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

    // Merge events at (numerically) identical times.
    let mut merged: Vec<Constraint> = Vec::with_capacity(events.len());
    for (t, fl, ce) in events {
        match merged.last_mut() {
            Some(last) if (t - last.t).abs() < 1e-12 => {
                if let Some(f) = fl {
                    last.floor = last.floor.max(f);
                }
                if let Some(c) = ce {
                    last.ceil = last.ceil.min(c);
                }
            }
            _ => merged.push(Constraint {
                t,
                floor: fl.unwrap_or(0.0),
                ceil: ce.unwrap_or(f64::INFINITY),
            }),
        }
    }
    merged
}

/// Computes the taut string through `constraints` starting at `(0, 0)`,
/// returning the cumulative schedule's breakpoints `(t, bits)`.
fn taut_string(constraints: &[Constraint]) -> Vec<(f64, f64)> {
    let mut path = vec![(0.0f64, 0.0f64)];
    let mut pivot_idx = 0usize; // constraints[..pivot_idx] are behind us

    'outer: loop {
        let (pt, pb) = *path.last().expect("path starts non-empty");
        let mut hi = f64::INFINITY;
        let mut lo = f64::NEG_INFINITY;
        let mut hi_at: Option<usize> = None;
        let mut lo_at: Option<usize> = None;

        // mut_range_bound: the new pivot takes effect via `continue
        // 'outer`, which re-enters this loop with the updated bound.
        #[allow(clippy::mut_range_bound)]
        for j in pivot_idx..constraints.len() {
            let c = constraints[j];
            let dt = c.t - pt;
            if dt <= 1e-12 {
                // Constraint at the pivot itself: must already hold.
                debug_assert!(
                    pb >= c.floor - 1e-6 && pb <= c.ceil + 1e-6,
                    "pivot violates same-time constraint"
                );
                continue;
            }
            // Ceiling slope limit.
            if c.ceil.is_finite() {
                let s = (c.ceil - pb) / dt;
                if s < hi {
                    hi = s;
                    hi_at = Some(j);
                }
            }
            // Floor slope requirement.
            let s = (c.floor - pb) / dt;
            if s > lo {
                lo = s;
                lo_at = Some(j);
            }
            if lo > hi + 1e-12 {
                // The string must bend. If the floor demand exceeded the
                // ceiling allowance, the binding ceiling forces a bend
                // DOWN onto the ceiling corner; conversely a ceiling that
                // undercuts the floor demand forces a bend UP onto the
                // floor corner. The corner processed *last* is the one
                // that caused the crossing, so bend at the other.
                let bend_on_ceiling = lo_at == Some(j);
                let (bend_idx, bend_bits, slope) = if bend_on_ceiling {
                    let k = hi_at.expect("hi must have been set for a crossing");
                    (k, constraints[k].ceil, hi)
                } else {
                    let k = lo_at.expect("lo must have been set for a crossing");
                    (k, constraints[k].floor, lo)
                };
                let bend_t = constraints[bend_idx].t;
                debug_assert!(slope.is_finite() && slope >= -1e-9);
                path.push((bend_t, bend_bits));
                pivot_idx = bend_idx + 1;
                continue 'outer;
            }
        }

        // Scanned everything without crossing: the terminal point set
        // lo == hi == required slope; go straight to it.
        let last = constraints.last().expect("constraints non-empty");
        if (last.t - pt).abs() > 1e-12 {
            path.push((last.t, last.floor));
        }
        break;
    }
    path
}

/// Runs a-priori (taut-string) smoothing with delay bound `d` seconds.
pub fn ott_smooth(trace: &VideoTrace, d: f64) -> Result<BaselineResult, OttError> {
    let tau = trace.tau();
    if trace.is_empty() {
        return Err(OttError::EmptyTrace);
    }
    if d <= tau + 1e-12 {
        return Err(OttError::DelayTooSmall { d, tau });
    }

    let cons = constraints(&trace.sizes, tau, d);
    let path = taut_string(&cons);

    // Rate segments from the path's slopes.
    let mut segments = Vec::with_capacity(path.len());
    for w in path.windows(2) {
        let (t0, b0) = w[0];
        let (t1, b1) = w[1];
        if t1 > t0 + 1e-12 {
            segments.push(RateSegment {
                start: t0,
                end: t1,
                rate: (b1 - b0) / (t1 - t0),
            });
        }
    }

    // Per-picture send intervals by inverting the cumulative path.
    // `inv_first(v)`: earliest time the path reaches `v`;
    // `inv_last(v)`: latest time the path is still at `v`.
    let invert = |v: f64, first: bool| -> f64 {
        for w in path.windows(2) {
            let (t0, b0) = w[0];
            let (t1, b1) = w[1];
            let hit_upper = if first { v <= b1 + 1e-9 } else { v < b1 - 1e-9 };
            if v >= b0 - 1e-9 && hit_upper {
                if (b1 - b0).abs() < 1e-12 {
                    return if first { t0 } else { t1 };
                }
                return t0 + (t1 - t0) * ((v - b0) / (b1 - b0)).clamp(0.0, 1.0);
            }
        }
        path.last().expect("non-empty").0
    };

    let mut prefix = 0.0f64;
    let mut schedule = Vec::with_capacity(trace.len());
    for (i, &bits) in trace.sizes.iter().enumerate() {
        let start = invert(prefix, false);
        prefix += bits as f64;
        let depart = invert(prefix, true);
        let rate = if depart > start + 1e-12 {
            bits as f64 / (depart - start)
        } else {
            f64::INFINITY
        };
        schedule.push(BaselineSchedule {
            index: i,
            start,
            rate,
            depart,
            delay: depart - i as f64 * tau,
        });
    }

    Ok(BaselineResult { schedule, segments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoother::{smooth, TIME_EPS};
    use crate::SmootherParams;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};

    const TAU: f64 = 1.0 / 30.0;

    fn toy_trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000,
                PictureType::P => 90_000,
                PictureType::B => 18_000,
            })
            .collect();
        VideoTrace::new("toy", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn rejects_sub_tau_delay_and_empty() {
        let t = toy_trace(9);
        assert!(matches!(
            ott_smooth(&t, 0.02),
            Err(OttError::DelayTooSmall { .. })
        ));
        // D = tau exactly needs instantaneous transmission: rejected too.
        assert!(matches!(
            ott_smooth(&t, TAU),
            Err(OttError::DelayTooSmall { .. })
        ));
        let empty = VideoTrace {
            name: "e".into(),
            pattern: GopPattern::new(3, 9).unwrap(),
            resolution: Resolution::VGA,
            fps: 30.0,
            sizes: vec![],
        };
        assert!(matches!(ott_smooth(&empty, 0.2), Err(OttError::EmptyTrace)));
    }

    #[test]
    fn all_delays_within_bound() {
        let t = toy_trace(90);
        for d in [1.5 * TAU, 0.1, 0.2, 0.5] {
            let r = ott_smooth(&t, d).unwrap();
            for p in &r.schedule {
                assert!(
                    p.delay <= d + 1e-6,
                    "picture {}: delay {} > {d}",
                    p.index,
                    p.delay
                );
            }
        }
    }

    #[test]
    fn causality_never_sends_unarrived_bits() {
        let t = toy_trace(45);
        let r = ott_smooth(&t, 0.2).unwrap();
        // Integrate the cumulative schedule at every arrival instant and
        // compare to the arrived prefix.
        let mut prefix = vec![0.0f64];
        for &s in &t.sizes {
            prefix.push(prefix.last().unwrap() + s as f64);
        }
        let cum_at = |time: f64| -> f64 {
            let mut cum = 0.0;
            for s in &r.segments {
                if time <= s.start {
                    break;
                }
                cum += s.rate * (time.min(s.end) - s.start);
            }
            cum
        };
        for (j, &arrived) in prefix.iter().enumerate().take(t.len()) {
            let arrival = (j as f64 + 1.0) * TAU;
            assert!(
                cum_at(arrival) <= arrived + 1.0,
                "at arrival of picture {j}: sent {} > arrived {}",
                cum_at(arrival),
                arrived
            );
        }
    }

    #[test]
    fn conserves_bits() {
        let t = toy_trace(45);
        let r = ott_smooth(&t, 0.15).unwrap();
        let sent: f64 = r.segments.iter().map(|s| (s.end - s.start) * s.rate).sum();
        assert!((sent / t.total_bits() as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rates_are_nonnegative_and_finite() {
        let t = toy_trace(90);
        let r = ott_smooth(&t, 0.1).unwrap();
        for s in &r.segments {
            assert!(s.rate.is_finite() && s.rate >= -1e-9, "rate {}", s.rate);
        }
    }

    #[test]
    fn periodic_trace_converges_to_pattern_rate() {
        let t = toy_trace(90);
        let r = ott_smooth(&t, 0.3).unwrap();
        let pattern_rate = (180_000.0 + 2.0 * 90_000.0 + 6.0 * 18_000.0) / (9.0 * TAU);
        // The long middle of the schedule runs near the pattern average.
        // (Not exactly: the optimal string amortizes over the start ramp
        // and the D-long tail too, so a few percent of deviation is the
        // *correct* answer.)
        let mid = r
            .segments
            .iter()
            .find(|s| s.start < 1.5 && s.end > 1.6)
            .expect("a long middle segment should exist");
        assert!(
            (mid.rate / pattern_rate - 1.0).abs() < 0.08,
            "mid rate {} vs pattern {}",
            mid.rate,
            pattern_rate
        );
        // And it is one long segment, i.e. genuinely smooth.
        assert!(
            mid.end - mid.start > 1.0,
            "middle segment spans {}..{}",
            mid.start,
            mid.end
        );
    }

    #[test]
    fn optimal_peak_rate_beats_online_algorithm() {
        // The oracle schedule's peak rate can never exceed the online
        // algorithm's peak at the same delay bound.
        let t = toy_trace(90);
        let d = 0.2;
        let opt = ott_smooth(&t, d).unwrap();
        let online = smooth(&t, SmootherParams::at_30fps(d, 1, 9).unwrap());
        let online_peak = online.rates().fold(0.0f64, f64::max);
        assert!(
            opt.max_rate() <= online_peak + TIME_EPS,
            "opt {} > online {}",
            opt.max_rate(),
            online_peak
        );
    }

    #[test]
    fn larger_delay_never_raises_peak() {
        let t = toy_trace(90);
        let peaks: Vec<f64> = [1.5 * TAU, 0.1, 0.2, 0.4]
            .iter()
            .map(|&d| ott_smooth(&t, d).unwrap().max_rate())
            .collect();
        for w in peaks.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6,
                "peaks must be non-increasing in D: {peaks:?}"
            );
        }
    }

    #[test]
    fn single_picture_schedule() {
        let pattern = GopPattern::new(1, 1).unwrap();
        let t = VideoTrace::new("one", pattern, Resolution::VGA, 30.0, vec![60_000]).unwrap();
        let r = ott_smooth(&t, 0.1).unwrap();
        assert_eq!(r.schedule.len(), 1);
        let p = r.schedule[0];
        // Must start at or after full arrival (τ) and finish by D.
        assert!(p.start >= TAU - 1e-9);
        assert!(p.depart <= 0.1 + 1e-9);
        assert!(p.delay <= 0.1 + 1e-9);
    }

    #[test]
    fn two_picture_hand_check() {
        // Pictures: 90_000 then 30_000 bits; D = 2τ.
        // Deadlines: picture 0 by 2τ, picture 1 by 3τ.
        // Arrivals: picture 0 at τ, picture 1 at 2τ.
        // Taut string: nothing before τ; 90k must go out during [τ, 2τ]
        // (rate 2.7 Mbps); then 30k during [2τ, 3τ] at 0.9 Mbps.
        let pattern = GopPattern::new(1, 1).unwrap();
        let t =
            VideoTrace::new("two", pattern, Resolution::VGA, 30.0, vec![90_000, 30_000]).unwrap();
        let r = ott_smooth(&t, 2.0 * TAU).unwrap();
        assert!(r.schedule[0].delay <= 2.0 * TAU + 1e-9);
        assert!(r.schedule[1].delay <= 2.0 * TAU + 1e-9);
        assert!(
            (r.max_rate() - 90_000.0 / TAU).abs() < 1.0,
            "peak {}",
            r.max_rate()
        );
    }
}
