//! # smooth-core
//!
//! The paper's primary contribution: **lossless smoothing of MPEG video**
//! (Lam, Chow & Yau, SIGCOMM '94). An encoder's output rate fluctuates by
//! an order of magnitude from picture to picture; this algorithm buffers
//! pictures at the sender and selects a sending rate `r_i` per picture so
//! that every picture's delay stays below a bound `D`, the sender never
//! idles, and the rate changes as rarely as possible — all without
//! discarding any information (hence *lossless*, in contrast to the lossy
//! quantizer/frame-dropping rate controls of §3.1).
//!
//! ## Quick start
//!
//! ```
//! use smooth_core::{smooth, SmootherParams};
//! use smooth_trace::sequences::driving1;
//!
//! let trace = driving1();
//! // The paper's recommended configuration: K = 1, H = N, D = 0.2 s.
//! let params = SmootherParams::recommended(trace.pattern.n());
//! let result = smooth(&trace, params);
//!
//! assert_eq!(result.delay_violations(), 0);   // Theorem 1, property (7)
//! assert!(result.continuous_service());        // Theorem 1, property (9)
//! ```
//!
//! ## Map of the crate
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`params`] | §4.1, eq. (1) | `(D, K, H)` with feasibility checks |
//! | [`smoother`] | §4.4, Fig. 2 | the algorithm, offline driver, results |
//! | [`estimate`] | §4.3–4.4 | pattern / oracle / default size estimators |
//! | [`lookahead`] | — | incremental O(1)-per-picture lookahead window |
//! | [`simd`] | — | explicit SSE2/AVX2 kernels with runtime dispatch |
//! | [`reference`] | — | naive refill/walk-back oracles for the tests |
//! | [`online`] | Fig. 1 | streaming `push`/`notify` interface |
//! | [`baseline`] | §3.2 | ideal smoothing, unsmoothed sender |
//! | [`ott`] | ref. \[8\] | a-priori optimal (taut-string) schedule |
//! | [`verify`] | §4.2, Thm. 1 | independent audit of every guarantee |

#![warn(missing_docs)]
// `unsafe` is denied everywhere except the explicit-SIMD kernels in
// [`simd`], which scope an `allow` and justify every block; nested
// unsafe operations always need their own block.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod baseline;
pub mod estimate;
pub mod eventsim;
pub mod lookahead;
pub mod lossy;
pub mod online;
pub mod ott;
pub mod params;
pub mod receiver;
pub mod reference;
pub mod simd;
pub mod smoother;
pub mod verify;

pub use adaptive::{same_type_estimate, smooth_adaptive};
pub use baseline::{ideal_rates, ideal_smooth, unsmoothed, BaselineResult, BaselineSchedule};
pub use estimate::{
    DefaultSizes, Invalidation, OracleEstimator, PatternEstimator, SizeEstimator,
    TypeDefaultEstimator,
};
pub use eventsim::{validate_against_events, EventSimReport, TimingWheel};
pub use lookahead::LookaheadWindow;
pub use lossy::{cap_peak_with_quantizer, drop_b_pictures, BDropResult, QuantizerControlResult};
pub use online::{
    decide_live, prunable_prefix, smooth_streaming, LiveCursor, LiveParams, OnlineSmoother,
    SizeHistory,
};
pub use ott::{ott_smooth, OttError};
pub use params::{ParamError, SmootherParams};
pub use receiver::{
    client_buffer_at_bound, min_playback_offset, simulate_receiver, ReceiverReport,
};
pub use simd::SimdLevel;
pub use smoother::{
    smooth, smooth_batch, smooth_with, smooth_with_scratch, BlockLanes, PictureSchedule,
    RateSegment, RateSelection, SmoothScratch, Smoother, SmoothingResult, TIME_EPS,
};
pub use verify::{check_theorem1, theorem_applies, Theorem1Report};
