//! The lossy rate-control alternatives of paper §3.1, implemented — so
//! the paper's argument ("lossy techniques … should be used only as a
//! last resort") can be made quantitative instead of rhetorical.
//!
//! Two techniques from the paper:
//!
//! * **Quantizer coarsening** ([`cap_peak_with_quantizer`]): the encoder
//!   raises the quantizer scale of any picture that would exceed a peak
//!   bit budget. Rate is capped, but the quality cost lands exactly where
//!   the paper says it must not — on the I pictures, which are the
//!   largest, the most quantization-sensitive ("intracoded blocks …
//!   very likely to produce blocking effects if too coarsely quantized"),
//!   and the prediction source for everything else.
//! * **B-picture dropping** ([`drop_b_pictures`]): reduces the *average*
//!   rate but, as the paper notes, "does not address the problem of
//!   picture-to-picture rate fluctuations" — the I-picture peak is
//!   untouched.
//!
//! Both return enough bookkeeping to compare against lossless smoothing
//! in the `lossy` experiment table.

use serde::{Deserialize, Serialize};
use smooth_mpeg::synth::size_ratio;
use smooth_mpeg::{PictureType, QuantizerSet};
use smooth_trace::VideoTrace;

/// Result of quantizer-based peak capping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizerControlResult {
    /// Adjusted picture sizes (bits, display order).
    pub sizes: Vec<u64>,
    /// Quantizer scale actually used per picture.
    pub quantizers: Vec<u8>,
    /// Pictures whose quantizer had to be coarsened.
    pub degraded: usize,
    /// Pictures that exceeded the budget even at the coarsest quantizer
    /// (their high-frequency coefficients would be discarded outright).
    pub truncated: usize,
    /// The per-picture bit budget that was enforced.
    pub budget_bits: u64,
}

impl QuantizerControlResult {
    /// Mean quantizer scale over pictures of the given type.
    pub fn mean_quantizer(&self, trace: &VideoTrace, t: PictureType) -> f64 {
        let qs: Vec<u8> = self
            .quantizers
            .iter()
            .enumerate()
            .filter(|&(i, _)| trace.type_of(i) == t)
            .map(|(_, &q)| q)
            .collect();
        if qs.is_empty() {
            return 0.0;
        }
        qs.iter().map(|&q| f64::from(q)).sum::<f64>() / qs.len() as f64
    }

    /// Worst quantizer used on any I picture — the paper's §3.1 quality
    /// red flag (30 produced a "grainy, fuzzy" picture).
    pub fn worst_i_quantizer(&self, trace: &VideoTrace) -> u8 {
        self.quantizers
            .iter()
            .enumerate()
            .filter(|&(i, _)| trace.type_of(i) == PictureType::I)
            .map(|(_, &q)| q)
            .max()
            .unwrap_or(0)
    }
}

/// Caps every picture at `peak_bps` by coarsening its quantizer scale:
/// the smallest `q ≥ base` whose modeled size fits `peak_bps · τ` is
/// selected (per picture); pictures that cannot fit even at `q = 31` are
/// truncated to the budget (discarding coefficients).
pub fn cap_peak_with_quantizer(
    trace: &VideoTrace,
    base: QuantizerSet,
    peak_bps: f64,
) -> QuantizerControlResult {
    assert!(peak_bps > 0.0, "peak rate must be positive");
    let budget = (peak_bps * trace.tau()) as u64;
    let mut sizes = Vec::with_capacity(trace.len());
    let mut quantizers = Vec::with_capacity(trace.len());
    let mut degraded = 0usize;
    let mut truncated = 0usize;

    for (i, &s0) in trace.sizes.iter().enumerate() {
        let t = trace.type_of(i);
        let q0 = base.for_type(t);
        let mut q = q0;
        let mut size = s0;
        while size > budget && q < 31 {
            q += 1;
            size = (s0 as f64 * size_ratio(q0, q)).round() as u64;
        }
        if q != q0 {
            degraded += 1;
        }
        if size > budget {
            truncated += 1;
            size = budget.max(1);
        }
        sizes.push(size.max(1));
        quantizers.push(q);
    }

    QuantizerControlResult {
        sizes,
        quantizers,
        degraded,
        truncated,
        budget_bits: budget,
    }
}

/// Result of B-picture dropping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BDropResult {
    /// Sizes of the transmitted pictures (B pictures removed), display
    /// order of the survivors.
    pub sizes: Vec<u64>,
    /// Number of pictures dropped.
    pub dropped: usize,
    /// Effective display rate after dropping (pictures/second) — motion
    /// becomes jerky below ~20.
    pub effective_fps: f64,
    /// Mean rate before dropping, bits/second.
    pub mean_before_bps: f64,
    /// Mean rate after dropping (same wall-clock duration).
    pub mean_after_bps: f64,
    /// Peak single-picture rate after dropping (unchanged: I pictures
    /// survive).
    pub peak_after_bps: f64,
}

/// Drops every `keep_one_in`-th B picture... no: drops B pictures so that
/// only one in `keep_one_in` B pictures survives (`keep_one_in == 1`
/// keeps all, `usize::MAX`-ish drops all). The common congestion response
/// is dropping all B pictures (`keep_one_in` large).
pub fn drop_b_pictures(trace: &VideoTrace, keep_one_in: usize) -> BDropResult {
    assert!(keep_one_in >= 1, "keep_one_in must be >= 1");
    let mut sizes = Vec::with_capacity(trace.len());
    let mut dropped = 0usize;
    let mut b_seen = 0usize;
    for (i, &s) in trace.sizes.iter().enumerate() {
        if trace.type_of(i) == PictureType::B {
            b_seen += 1;
            if b_seen % keep_one_in != 0 {
                dropped += 1;
                continue;
            }
        }
        sizes.push(s);
    }
    let duration = trace.duration();
    let total_after: u64 = sizes.iter().sum();
    BDropResult {
        effective_fps: sizes.len() as f64 / duration,
        mean_before_bps: trace.mean_rate_bps(),
        mean_after_bps: total_after as f64 / duration,
        peak_after_bps: sizes.iter().copied().max().unwrap_or(0) as f64 * trace.fps,
        sizes,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_trace::driving1;

    #[test]
    fn quantizer_cap_respects_budget() {
        let trace = driving1();
        let r = cap_peak_with_quantizer(&trace, QuantizerSet::PAPER, 4.0e6);
        let budget = r.budget_bits;
        assert!(
            r.sizes.iter().all(|&s| s <= budget),
            "all pictures within budget"
        );
        assert_eq!(r.sizes.len(), trace.len());
    }

    #[test]
    fn quality_cost_lands_on_i_pictures() {
        // Cap at the peak the lossless smoother achieves at D = 0.2
        // (~3.4 Mbps): the lossy alternative must coarsen I pictures far
        // beyond their base quantizer of 4.
        let trace = driving1();
        let r = cap_peak_with_quantizer(&trace, QuantizerSet::PAPER, 3.4e6);
        assert!(r.degraded > 0);
        let worst = r.worst_i_quantizer(&trace);
        assert!(
            worst >= 8,
            "I pictures must be coarsened well past 4 (got {worst})"
        );
        let mean_i = r.mean_quantizer(&trace, PictureType::I);
        assert!(mean_i > 6.0, "mean I quantizer {mean_i}");
        // B pictures were already small: mostly untouched.
        let mean_b = r.mean_quantizer(&trace, PictureType::B);
        assert!((15.0..16.0).contains(&mean_b), "mean B quantizer {mean_b}");
    }

    #[test]
    fn generous_cap_degrades_nothing() {
        let trace = driving1();
        let r = cap_peak_with_quantizer(&trace, QuantizerSet::PAPER, 20.0e6);
        assert_eq!(r.degraded, 0);
        assert_eq!(r.truncated, 0);
        assert_eq!(r.sizes, trace.sizes);
    }

    #[test]
    fn impossible_cap_truncates() {
        let trace = driving1();
        // 0.5 Mbps budget: ~16.7 kbit per picture — I pictures cannot fit
        // even at q = 31.
        let r = cap_peak_with_quantizer(&trace, QuantizerSet::PAPER, 0.5e6);
        assert!(r.truncated > 0);
        assert!(r.sizes.iter().all(|&s| s <= r.budget_bits));
    }

    #[test]
    fn b_dropping_cuts_mean_not_peak() {
        // The paper's §3.1 point, quantified: dropping all B pictures
        // reduces the average rate but the I-picture peak is untouched.
        let trace = driving1();
        let r = drop_b_pictures(&trace, usize::MAX);
        assert!(r.dropped > 0);
        assert!(
            r.mean_after_bps < 0.8 * r.mean_before_bps,
            "mean must fall substantially"
        );
        assert!(
            (r.peak_after_bps - trace.peak_picture_rate_bps()).abs() < 1.0,
            "peak unchanged: {} vs {}",
            r.peak_after_bps,
            trace.peak_picture_rate_bps()
        );
        // Display rate collapses from 30 to 10 pictures/s (6 B of 9 gone).
        assert!(
            (r.effective_fps - 10.0).abs() < 0.5,
            "fps {}",
            r.effective_fps
        );
    }

    #[test]
    fn keep_all_is_identity() {
        let trace = driving1();
        let r = drop_b_pictures(&trace, 1);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.sizes, trace.sizes);
        assert!((r.effective_fps - 30.0).abs() < 1e-9);
    }

    #[test]
    fn keep_every_second_b() {
        let trace = driving1();
        let r = drop_b_pictures(&trace, 2);
        // 200 B pictures in 300: half dropped.
        assert_eq!(r.dropped, 100);
        assert_eq!(r.sizes.len(), 200);
    }
}
