//! Streaming (transport-protocol) interface to the smoothing algorithm.
//!
//! The paper situates the algorithm inside a transport protocol fed by a
//! live encoder (Figure 1): pictures arrive one per period, and `notify`
//! tells the transmitter each picture's rate as soon as it can be
//! determined. [`OnlineSmoother`] is that interface: feed arrivals with
//! [`push`](OnlineSmoother::push), receive rate decisions incrementally,
//! and flush the tail with [`finish`](OnlineSmoother::finish).
//!
//! The offline [`crate::Smoother`] and this type share one decision
//! function, so for a stored video (known length) the streaming schedule
//! is **bit-identical** to the offline one — a property the test suite
//! pins down. For live capture (unknown length) the only difference is at
//! the very end of the sequence: until the encoder signals the end, the
//! lookahead extends past the final picture using estimates, which can
//! select slightly different rates for the last `H − 1` pictures (pinned
//! by `tests/live_tail_props.rs`). Theorem 1 is unaffected either way.
//!
//! ## Batched decisions and bounded memory
//!
//! The decision step itself is exposed as [`decide_live`], a free
//! function over explicit cursor state, so that a driver holding many
//! sessions (the `smooth-engine` session engine) can advance them all
//! through the same hot path without one heap-allocated smoother per
//! stream. Arrived history is addressed *logically* through
//! [`SizeHistory`]: a session that has pruned its decided prefix passes
//! `base > 0` and only the retained tail. [`OnlineSmoother`] itself
//! compacts its history this way whenever its estimator declares a
//! [`SizeEstimator::history_window`], so a live session holds O(H + N +
//! K + D/τ) sizes instead of every picture ever pushed — with schedules
//! bit-identical to full history (pinned by proptests against
//! [`crate::reference::smooth_live_reference`]).

use crate::estimate::{PatternEstimator, SizeEstimator};
use crate::lookahead::LookaheadWindow;
use crate::params::SmootherParams;
use crate::smoother::{
    decide_one, BlockLanes, DecideCtx, PictureSchedule, RateSelection, SmoothingResult, TIME_EPS,
};
use smooth_mpeg::GopPattern;

/// Per-session decision state for [`decide_live`]: everything one live
/// stream carries between decisions, small and `Copy`-able so batch
/// drivers can keep it in parallel arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveCursor {
    /// Decisions already emitted; the next decidable picture index.
    pub decided: usize,
    /// Departure time of the last decided picture (0.0 before the first).
    pub depart: f64,
    /// Rate of the last decided picture, if any.
    pub prev_rate: Option<f64>,
    /// High-water mark of the visible prefix length consulted so far;
    /// together with `decided` it bounds which history may be pruned
    /// (see [`prunable_prefix`]).
    pub watermark: usize,
}

impl LiveCursor {
    /// A fresh session: nothing decided, nothing consulted.
    pub fn new() -> Self {
        LiveCursor {
            decided: 0,
            depart: 0.0,
            prev_rate: None,
            watermark: 0,
        }
    }
}

impl Default for LiveCursor {
    fn default() -> Self {
        Self::new()
    }
}

/// A logically addressed view of a session's arrived sizes: picture `x`
/// (display order) has size `tail[x − base]`, for `base ≤ x < base +
/// tail.len()`. Sessions that never prune pass `base = 0` and the full
/// history; pruning sessions pass the retained suffix.
///
/// `base` must be a multiple of the GOP period `N` and must satisfy the
/// bound from [`prunable_prefix`] — both are what keeps pruned schedules
/// bit-identical to full history (see
/// [`SizeEstimator::history_window`]).
#[derive(Debug, Clone, Copy)]
pub struct SizeHistory<'a> {
    /// Logical index of `tail[0]` (number of pruned sizes).
    pub base: usize,
    /// Retained sizes, in display order.
    pub tail: &'a [u64],
}

impl SizeHistory<'_> {
    /// Total pictures pushed so far (pruned + retained).
    pub fn pushed(&self) -> usize {
        self.base + self.tail.len()
    }
}

/// The per-class (not per-session) configuration for [`decide_live`]:
/// many sessions sharing one `(params, pattern, estimator, selection)`
/// class borrow a single `LiveParams`.
pub struct LiveParams<'a, E: SizeEstimator + ?Sized> {
    /// Smoother parameters `(D, K, H)`.
    pub params: &'a SmootherParams,
    /// The GOP pattern.
    pub pattern: GopPattern,
    /// Size estimator for not-yet-arrived pictures.
    pub estimator: &'a E,
    /// Rate-selection policy.
    pub selection: RateSelection,
    /// Total length, if known up front (stored video).
    pub total: Option<usize>,
}

/// Attempts one live rate decision — the body of the paper's `notify`
/// step, shared verbatim by [`OnlineSmoother::push`] and the
/// `smooth-engine` session engine.
///
/// Returns `Some` (and advances `cursor`) when picture
/// `cursor.decided`'s preconditions are met: its start time `t_i` has
/// enough arrivals in hand (`⌊t_i/τ⌋`, at least `i + K`, at least `i +
/// 1`), or the stream has `ended`. Returns `None` when the decision must
/// wait for more pushes (or everything is decided). Call in a loop to
/// drain; `need`/`visible_len` are monotone across consecutive
/// decisions, so `window` slides instead of refilling.
///
/// `lanes` is decision scratch a driver hoists across sessions;
/// `window` is per-session sliding lookahead state and must see the same
/// session (and the same `history.base`) on every call — reset it after
/// pruning.
pub fn decide_live<E: SizeEstimator + ?Sized>(
    cfg: &LiveParams<'_, E>,
    history: SizeHistory<'_>,
    ended: bool,
    cursor: &mut LiveCursor,
    window: &mut LookaheadWindow,
    lanes: &mut BlockLanes,
) -> Option<PictureSchedule> {
    let params = cfg.params;
    let tau = params.tau;
    let k = params.k;
    let pushed = history.pushed();
    let n_known: Option<usize> = if ended { Some(pushed) } else { cfg.total };

    let i = cursor.decided;
    if let Some(n) = n_known {
        if i >= n {
            return None;
        }
    }
    // t_i is known once d_{i−1} is known (it is: i−1 decided).
    let time = params.start_time(i, cursor.depart);
    // Everything that will have arrived by t_i must be in hand; for
    // K = 0, picture i itself must also be in hand because its actual
    // size determines the departure time.
    let arrived_by_time = ((time + TIME_EPS) / tau).floor() as usize;
    let mut need = arrived_by_time.max(i + k).max(i + 1);
    if let Some(n) = n_known {
        need = need.min(n.max(i + 1));
    }
    if pushed < need && !ended {
        return None; // wait for more pushes
    }
    if pushed <= i {
        return None; // even at end-of-stream we cannot schedule unseen pictures
    }
    let visible_len = need.min(pushed);
    cursor.watermark = cursor.watermark.max(visible_len);

    // All reads below are at logical indices ≥ base: the decision reads
    // `size_i` at `i ≥ decided ≥ base`, the window at `j ≥ i`, and the
    // estimator (per its `history_window` promise) within the retained
    // suffix. Shifting every index by `base` — a multiple of N — keeps
    // GOP slots, and therefore every estimate and every cached window
    // slot, bit-identical to the unpruned computation.
    let base = history.base;
    debug_assert!(base <= i, "pruned past the next undecided picture");
    debug_assert!(base % cfg.pattern.n() == 0, "prune not pattern-aligned");
    let visible = &history.tail[..visible_len - base];

    let pattern = cfg.pattern;
    let estimator = cfg.estimator;
    let look = match n_known {
        Some(n) => params.h.min(n - i),
        None => params.h,
    };
    let sizes_ahead = window.advance(
        i - base,
        look,
        visible,
        estimator.invalidation(),
        pattern.n(),
        |j| estimator.estimate(j, visible, &pattern),
    );
    let ctx = DecideCtx {
        params,
        sizes_ahead,
        pattern_n: pattern.n(),
        selection: cfg.selection,
        i,
        start: time,
        prev_rate: cursor.prev_rate,
        size_i: history.tail[i - base],
        // Arrivals stream in, so the size bound needed for the
        // order-free scan is not known up front.
        exact_prefix: false,
    };
    let decision = decide_one(&ctx, lanes);
    cursor.depart = decision.depart;
    cursor.prev_rate = Some(decision.rate);
    cursor.decided += 1;
    Some(decision)
}

/// How many leading sizes a session may prune right now: the largest
/// whole-pattern prefix below both `cursor.decided` (no decision will
/// read an earlier `size_i` or lookahead slot again) and
/// `cursor.watermark − w` (the estimator's declared
/// [`history_window`](SizeEstimator::history_window) stays fully
/// retained — `visible_len` is monotone, so every future estimate reads
/// within the last `w` of a prefix at least as long as the watermark).
///
/// Returns 0 when the estimator makes no compaction promise
/// (`history_window() == None`).
pub fn prunable_prefix(
    cursor: &LiveCursor,
    history_window: Option<usize>,
    pattern_n: usize,
) -> usize {
    let Some(w) = history_window else { return 0 };
    let cut = cursor.decided.min(cursor.watermark.saturating_sub(w));
    cut - cut % pattern_n.max(1)
}

/// Incremental smoother for a live or stored picture stream.
pub struct OnlineSmoother<E: SizeEstimator = PatternEstimator> {
    params: SmootherParams,
    pattern: GopPattern,
    estimator: E,
    selection: RateSelection,
    /// Total length, if known up front (stored video). Enables exact
    /// equivalence with the offline smoother.
    expected_total: Option<usize>,
    /// Logical index of `buf[0]`: sizes `0..base` have been pruned.
    base: usize,
    /// Retained sizes (display order, logical pictures
    /// `base..base + buf.len()`).
    buf: Vec<u64>,
    /// Decision state shared with [`decide_live`].
    cursor: LiveCursor,
    /// Incrementally maintained lookahead (see `DecideCtx::sizes_ahead`),
    /// in `base`-shifted coordinates.
    window: LookaheadWindow,
    /// Cached `estimator.history_window(&pattern)`.
    hist: Option<usize>,
    ended: bool,
}

impl OnlineSmoother<PatternEstimator> {
    /// Creates a live smoother with the paper's default estimator and
    /// basic rate selection.
    pub fn new(params: SmootherParams, pattern: GopPattern) -> Self {
        Self::with_estimator(
            params,
            pattern,
            PatternEstimator::default(),
            RateSelection::Basic,
            None,
        )
    }

    /// Creates a smoother for a stored video of known length; decisions
    /// match the offline [`crate::smooth`] exactly.
    pub fn for_stored(params: SmootherParams, pattern: GopPattern, total_pictures: usize) -> Self {
        Self::with_estimator(
            params,
            pattern,
            PatternEstimator::default(),
            RateSelection::Basic,
            Some(total_pictures),
        )
    }
}

impl<E: SizeEstimator> OnlineSmoother<E> {
    /// Fully customized construction.
    pub fn with_estimator(
        params: SmootherParams,
        pattern: GopPattern,
        estimator: E,
        selection: RateSelection,
        expected_total: Option<usize>,
    ) -> Self {
        let hist = estimator.history_window(&pattern);
        OnlineSmoother {
            params,
            pattern,
            estimator,
            selection,
            expected_total,
            base: 0,
            buf: Vec::new(),
            cursor: LiveCursor::new(),
            window: LookaheadWindow::new(),
            hist,
            ended: false,
        }
    }

    /// Number of pictures pushed so far.
    pub fn pictures_pushed(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Number of rate decisions emitted so far.
    pub fn pictures_decided(&self) -> usize {
        self.cursor.decided
    }

    /// Number of arrived sizes currently retained in memory. With a
    /// compaction-capable estimator this stays O(H + N + K + D/τ) for a
    /// live session no matter how many pictures are pushed; without one
    /// (e.g. [`crate::OracleEstimator`]) it equals
    /// [`pictures_pushed`](Self::pictures_pushed).
    pub fn retained(&self) -> usize {
        self.buf.len()
    }

    /// Allocated capacity of the retained-size buffer, for memory
    /// regression tests.
    pub fn retained_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Feeds the next picture's coded size (bits) and returns any newly
    /// decidable schedules (the paper's `notify` events), in display
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish), or past the
    /// declared `expected_total`.
    pub fn push(&mut self, size_bits: u64) -> Vec<PictureSchedule> {
        assert!(!self.ended, "push after finish()");
        if let Some(total) = self.expected_total {
            assert!(
                self.pictures_pushed() < total,
                "push beyond declared total {total}"
            );
        }
        self.buf.push(size_bits);
        self.drain()
    }

    /// Signals the end of the sequence (the paper's `seq_end`) and
    /// returns the remaining schedules.
    pub fn finish(&mut self) -> Vec<PictureSchedule> {
        self.ended = true;
        self.drain()
    }

    /// Emits every decision whose preconditions are now met, then prunes
    /// decided history the estimator no longer needs.
    fn drain(&mut self) -> Vec<PictureSchedule> {
        let mut out = Vec::new();
        let mut lanes = BlockLanes::default();
        let OnlineSmoother {
            params,
            pattern,
            estimator,
            selection,
            expected_total,
            base,
            buf,
            cursor,
            window,
            ended,
            ..
        } = self;
        let cfg = LiveParams {
            params,
            pattern: *pattern,
            estimator,
            selection: *selection,
            total: *expected_total,
        };
        loop {
            let history = SizeHistory {
                base: *base,
                tail: buf,
            };
            match decide_live(&cfg, history, *ended, cursor, window, &mut lanes) {
                Some(decision) => out.push(decision),
                None => break,
            }
        }
        self.compact();
        out
    }

    /// Drops the prunable prefix once it dominates the buffer, keeping
    /// the memmove amortized O(1) per push.
    fn compact(&mut self) {
        let cut = prunable_prefix(&self.cursor, self.hist, self.pattern.n());
        let drop = cut.saturating_sub(self.base);
        if drop == 0 || drop < self.buf.len() / 2 {
            return;
        }
        self.buf.drain(..drop);
        self.base = cut;
        // The window caches `base`-shifted coordinates; force a refill
        // (bit-identical to sliding — pinned by the lookahead proptests).
        self.window.reset();
    }

    /// Collects all decisions made so far into a [`SmoothingResult`]-style
    /// container by re-running; prefer accumulating the schedules returned
    /// by [`push`](Self::push)/[`finish`](Self::finish) in streaming use.
    pub fn params(&self) -> &SmootherParams {
        &self.params
    }
}

/// Convenience: streams a whole trace through an [`OnlineSmoother`] with
/// known length and returns the result (equals [`crate::smooth`]).
pub fn smooth_streaming(
    trace: &smooth_trace::VideoTrace,
    params: SmootherParams,
) -> SmoothingResult {
    let mut online = OnlineSmoother::for_stored(params, trace.pattern, trace.len());
    let mut schedule = Vec::with_capacity(trace.len());
    for &s in &trace.sizes {
        schedule.extend(online.push(s));
    }
    schedule.extend(online.finish());
    SmoothingResult { params, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoother::smooth;
    use smooth_mpeg::{PictureType, Resolution};
    use smooth_trace::VideoTrace;

    fn trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 190_000 + (i as u64 % 7) * 1000,
                PictureType::P => 80_000 + (i as u64 % 5) * 3000,
                PictureType::B => 17_000 + (i as u64 % 3) * 2000,
            })
            .collect();
        VideoTrace::new("online", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn stored_mode_matches_offline_exactly() {
        let t = trace(90);
        for (d, k, h) in [(0.1, 1, 9), (0.2, 1, 9), (0.2, 3, 9), (0.3, 1, 18)] {
            let params = SmootherParams::at_30fps(d, k, h).unwrap();
            let offline = smooth(&t, params);
            let streamed = smooth_streaming(&t, params);
            assert_eq!(offline, streamed, "divergence at D={d} K={k} H={h}");
        }
    }

    #[test]
    fn decisions_arrive_incrementally() {
        let t = trace(45);
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, t.pattern, t.len());
        let mut decided_after_each = Vec::new();
        for &s in &t.sizes {
            let newly = online.push(s);
            decided_after_each.push(newly.len());
        }
        let tail = online.finish();
        // Every picture got exactly one decision.
        let total: usize = decided_after_each.iter().sum::<usize>() + tail.len();
        assert_eq!(total, 45);
        // With K = 1 decisions flow during the stream, not only at the
        // end.
        assert!(decided_after_each.iter().sum::<usize>() > 30);
    }

    #[test]
    fn live_mode_diverges_only_near_the_end() {
        let t = trace(90);
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let offline = smooth(&t, params);

        let mut online = OnlineSmoother::new(params, t.pattern);
        let mut schedule = Vec::new();
        for &s in &t.sizes {
            schedule.extend(online.push(s));
        }
        schedule.extend(online.finish());
        assert_eq!(schedule.len(), 90);
        // Identical except possibly within the last H pictures, where the
        // live smoother cannot know the sequence is about to end.
        let h = params.h;
        for (i, (live, stored)) in schedule.iter().zip(&offline.schedule).enumerate() {
            if i >= 90 - h {
                break;
            }
            assert_eq!(live, stored, "early divergence at {i}");
        }
    }

    #[test]
    fn live_mode_still_satisfies_theorem1() {
        let t = trace(90);
        let params = SmootherParams::at_30fps(0.15, 1, 9).unwrap();
        let mut online = OnlineSmoother::new(params, t.pattern);
        let mut schedule = Vec::new();
        for &s in &t.sizes {
            schedule.extend(online.push(s));
        }
        schedule.extend(online.finish());
        let result = SmoothingResult { params, schedule };
        let report = crate::verify::check_theorem1(&result);
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn k9_buffers_nine_before_first_decision() {
        let t = trace(27);
        let params = SmootherParams::at_30fps(0.4, 9, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, t.pattern, t.len());
        let mut first_decision_at = None;
        for (idx, &s) in t.sizes.iter().enumerate() {
            if !online.push(s).is_empty() && first_decision_at.is_none() {
                first_decision_at = Some(idx);
            }
        }
        online.finish();
        // Pictures 0..K-1 = 0..8 must be in hand (and, because t_0 = 9τ
        // means 9 pictures have arrived by then, exactly 9 pushes).
        assert_eq!(first_decision_at, Some(8));
    }

    #[test]
    #[should_panic(expected = "push after finish")]
    fn push_after_finish_panics() {
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::new(params, GopPattern::new(3, 9).unwrap());
        online.finish();
        online.push(1000);
    }

    #[test]
    #[should_panic(expected = "beyond declared total")]
    fn push_beyond_total_panics() {
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, GopPattern::new(3, 9).unwrap(), 1);
        online.push(1000);
        online.push(1000);
    }

    #[test]
    fn finish_without_pictures_is_empty() {
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::new(params, GopPattern::new(3, 9).unwrap());
        assert!(online.finish().is_empty());
    }

    #[test]
    fn counters_track_progress() {
        let t = trace(18);
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, t.pattern, 18);
        for &s in &t.sizes {
            online.push(s);
        }
        assert_eq!(online.pictures_pushed(), 18);
        online.finish();
        assert_eq!(online.pictures_decided(), 18);
    }

    #[test]
    fn live_history_stays_bounded() {
        // A live session with the pattern estimator prunes its decided
        // prefix: after thousands of pushes the retained slice (and its
        // allocation) stays a small constant, not O(pushed).
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let pattern = GopPattern::new(3, 9).unwrap();
        let mut online = OnlineSmoother::new(params, pattern);
        let t = trace(9);
        let mut max_retained = 0;
        for i in 0..5_000usize {
            online.push(t.sizes[i % 9]);
            max_retained = max_retained.max(online.retained());
        }
        assert_eq!(online.pictures_pushed(), 5_000);
        // Live bound: undecided tail ≤ max(⌈D/τ⌉, K) + slack, plus the
        // estimator window 2N and pattern-alignment slop — far below the
        // push count.
        assert!(max_retained < 128, "retained grew to {max_retained}");
        assert!(online.retained_capacity() < 256);
    }
}
