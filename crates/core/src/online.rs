//! Streaming (transport-protocol) interface to the smoothing algorithm.
//!
//! The paper situates the algorithm inside a transport protocol fed by a
//! live encoder (Figure 1): pictures arrive one per period, and `notify`
//! tells the transmitter each picture's rate as soon as it can be
//! determined. [`OnlineSmoother`] is that interface: feed arrivals with
//! [`push`](OnlineSmoother::push), receive rate decisions incrementally,
//! and flush the tail with [`finish`](OnlineSmoother::finish).
//!
//! The offline [`crate::Smoother`] and this type share one decision
//! function, so for a stored video (known length) the streaming schedule
//! is **bit-identical** to the offline one — a property the test suite
//! pins down. For live capture (unknown length) the only difference is at
//! the very end of the sequence: until the encoder signals the end, the
//! lookahead extends past the final picture using estimates, which can
//! select slightly different rates for the last `H − 1` pictures. Theorem
//! 1 is unaffected either way.

use crate::estimate::{PatternEstimator, SizeEstimator};
use crate::lookahead::LookaheadWindow;
use crate::params::SmootherParams;
use crate::smoother::{
    decide_one, BlockLanes, DecideCtx, PictureSchedule, RateSelection, SmoothingResult, TIME_EPS,
};
use smooth_mpeg::GopPattern;

/// Incremental smoother for a live or stored picture stream.
pub struct OnlineSmoother<E: SizeEstimator = PatternEstimator> {
    params: SmootherParams,
    pattern: GopPattern,
    estimator: E,
    selection: RateSelection,
    /// Total length, if known up front (stored video). Enables exact
    /// equivalence with the offline smoother.
    expected_total: Option<usize>,
    /// Sizes pushed so far (display order).
    arrived: Vec<u64>,
    /// Decisions already emitted.
    decided: usize,
    /// Incrementally maintained lookahead (see `DecideCtx::sizes_ahead`).
    window: LookaheadWindow,
    /// Departure time of the last decided picture.
    depart: f64,
    prev_rate: Option<f64>,
    ended: bool,
}

impl OnlineSmoother<PatternEstimator> {
    /// Creates a live smoother with the paper's default estimator and
    /// basic rate selection.
    pub fn new(params: SmootherParams, pattern: GopPattern) -> Self {
        Self::with_estimator(
            params,
            pattern,
            PatternEstimator::default(),
            RateSelection::Basic,
            None,
        )
    }

    /// Creates a smoother for a stored video of known length; decisions
    /// match the offline [`crate::smooth`] exactly.
    pub fn for_stored(params: SmootherParams, pattern: GopPattern, total_pictures: usize) -> Self {
        Self::with_estimator(
            params,
            pattern,
            PatternEstimator::default(),
            RateSelection::Basic,
            Some(total_pictures),
        )
    }
}

impl<E: SizeEstimator> OnlineSmoother<E> {
    /// Fully customized construction.
    pub fn with_estimator(
        params: SmootherParams,
        pattern: GopPattern,
        estimator: E,
        selection: RateSelection,
        expected_total: Option<usize>,
    ) -> Self {
        OnlineSmoother {
            params,
            pattern,
            estimator,
            selection,
            expected_total,
            arrived: Vec::new(),
            decided: 0,
            window: LookaheadWindow::new(),
            depart: 0.0,
            prev_rate: None,
            ended: false,
        }
    }

    /// Number of pictures pushed so far.
    pub fn pictures_pushed(&self) -> usize {
        self.arrived.len()
    }

    /// Number of rate decisions emitted so far.
    pub fn pictures_decided(&self) -> usize {
        self.decided
    }

    /// Feeds the next picture's coded size (bits) and returns any newly
    /// decidable schedules (the paper's `notify` events), in display
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish), or past the
    /// declared `expected_total`.
    pub fn push(&mut self, size_bits: u64) -> Vec<PictureSchedule> {
        assert!(!self.ended, "push after finish()");
        if let Some(total) = self.expected_total {
            assert!(
                self.arrived.len() < total,
                "push beyond declared total {total}"
            );
        }
        self.arrived.push(size_bits);
        self.drain()
    }

    /// Signals the end of the sequence (the paper's `seq_end`) and
    /// returns the remaining schedules.
    pub fn finish(&mut self) -> Vec<PictureSchedule> {
        self.ended = true;
        self.drain()
    }

    /// Emits every decision whose preconditions are now met.
    fn drain(&mut self) -> Vec<PictureSchedule> {
        let tau = self.params.tau;
        let k = self.params.k;
        let n_known: Option<usize> = if self.ended {
            Some(self.arrived.len())
        } else {
            self.expected_total
        };

        let mut out = Vec::new();
        let mut lanes = BlockLanes::default();
        loop {
            let i = self.decided;
            if let Some(n) = n_known {
                if i >= n {
                    break;
                }
            }
            // t_i is known once d_{i−1} is known (it is: i−1 decided).
            let time = self.params.start_time(i, self.depart);
            // Everything that will have arrived by t_i must be in hand;
            // for K = 0, picture i itself must also be in hand because
            // its actual size determines the departure time.
            let arrived_by_time = ((time + TIME_EPS) / tau).floor() as usize;
            let mut need = arrived_by_time.max(i + k).max(i + 1);
            if let Some(n) = n_known {
                need = need.min(n.max(i + 1));
            }
            if self.arrived.len() < need && !self.ended {
                break; // wait for more pushes
            }
            if self.arrived.len() <= i {
                break; // even at end-of-stream we cannot schedule unseen pictures
            }
            let visible_len = need.min(self.arrived.len());

            let pattern = self.pattern;
            let estimator = &self.estimator;
            let visible = &self.arrived[..visible_len];
            let look = match n_known {
                Some(n) => self.params.h.min(n - i),
                None => self.params.h,
            };
            // `visible_len` is monotone across drain steps (t_i and
            // `need` both are), so the window slides instead of refilling.
            let sizes_ahead = self.window.advance(
                i,
                look,
                visible,
                estimator.invalidation(),
                pattern.n(),
                |j| estimator.estimate(j, visible, &pattern),
            );
            let ctx = DecideCtx {
                params: &self.params,
                sizes_ahead,
                pattern_n: pattern.n(),
                selection: self.selection,
                i,
                start: time,
                prev_rate: self.prev_rate,
                size_i: self.arrived[i],
                // Arrivals stream in, so the size bound needed for the
                // order-free scan is not known up front.
                exact_prefix: false,
            };
            let decision = decide_one(&ctx, &mut lanes);
            self.depart = decision.depart;
            self.prev_rate = Some(decision.rate);
            self.decided += 1;
            out.push(decision);
        }
        out
    }

    /// Collects all decisions made so far into a [`SmoothingResult`]-style
    /// container by re-running; prefer accumulating the schedules returned
    /// by [`push`](Self::push)/[`finish`](Self::finish) in streaming use.
    pub fn params(&self) -> &SmootherParams {
        &self.params
    }
}

/// Convenience: streams a whole trace through an [`OnlineSmoother`] with
/// known length and returns the result (equals [`crate::smooth`]).
pub fn smooth_streaming(
    trace: &smooth_trace::VideoTrace,
    params: SmootherParams,
) -> SmoothingResult {
    let mut online = OnlineSmoother::for_stored(params, trace.pattern, trace.len());
    let mut schedule = Vec::with_capacity(trace.len());
    for &s in &trace.sizes {
        schedule.extend(online.push(s));
    }
    schedule.extend(online.finish());
    SmoothingResult { params, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoother::smooth;
    use smooth_mpeg::{PictureType, Resolution};
    use smooth_trace::VideoTrace;

    fn trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 190_000 + (i as u64 % 7) * 1000,
                PictureType::P => 80_000 + (i as u64 % 5) * 3000,
                PictureType::B => 17_000 + (i as u64 % 3) * 2000,
            })
            .collect();
        VideoTrace::new("online", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn stored_mode_matches_offline_exactly() {
        let t = trace(90);
        for (d, k, h) in [(0.1, 1, 9), (0.2, 1, 9), (0.2, 3, 9), (0.3, 1, 18)] {
            let params = SmootherParams::at_30fps(d, k, h).unwrap();
            let offline = smooth(&t, params);
            let streamed = smooth_streaming(&t, params);
            assert_eq!(offline, streamed, "divergence at D={d} K={k} H={h}");
        }
    }

    #[test]
    fn decisions_arrive_incrementally() {
        let t = trace(45);
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, t.pattern, t.len());
        let mut decided_after_each = Vec::new();
        for &s in &t.sizes {
            let newly = online.push(s);
            decided_after_each.push(newly.len());
        }
        let tail = online.finish();
        // Every picture got exactly one decision.
        let total: usize = decided_after_each.iter().sum::<usize>() + tail.len();
        assert_eq!(total, 45);
        // With K = 1 decisions flow during the stream, not only at the
        // end.
        assert!(decided_after_each.iter().sum::<usize>() > 30);
    }

    #[test]
    fn live_mode_diverges_only_near_the_end() {
        let t = trace(90);
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let offline = smooth(&t, params);

        let mut online = OnlineSmoother::new(params, t.pattern);
        let mut schedule = Vec::new();
        for &s in &t.sizes {
            schedule.extend(online.push(s));
        }
        schedule.extend(online.finish());
        assert_eq!(schedule.len(), 90);
        // Identical except possibly within the last H pictures, where the
        // live smoother cannot know the sequence is about to end.
        let h = params.h;
        for (i, (live, stored)) in schedule.iter().zip(&offline.schedule).enumerate() {
            if i >= 90 - h {
                break;
            }
            assert_eq!(live, stored, "early divergence at {i}");
        }
    }

    #[test]
    fn live_mode_still_satisfies_theorem1() {
        let t = trace(90);
        let params = SmootherParams::at_30fps(0.15, 1, 9).unwrap();
        let mut online = OnlineSmoother::new(params, t.pattern);
        let mut schedule = Vec::new();
        for &s in &t.sizes {
            schedule.extend(online.push(s));
        }
        schedule.extend(online.finish());
        let result = SmoothingResult { params, schedule };
        let report = crate::verify::check_theorem1(&result);
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn k9_buffers_nine_before_first_decision() {
        let t = trace(27);
        let params = SmootherParams::at_30fps(0.4, 9, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, t.pattern, t.len());
        let mut first_decision_at = None;
        for (idx, &s) in t.sizes.iter().enumerate() {
            if !online.push(s).is_empty() && first_decision_at.is_none() {
                first_decision_at = Some(idx);
            }
        }
        online.finish();
        // Pictures 0..K-1 = 0..8 must be in hand (and, because t_0 = 9τ
        // means 9 pictures have arrived by then, exactly 9 pushes).
        assert_eq!(first_decision_at, Some(8));
    }

    #[test]
    #[should_panic(expected = "push after finish")]
    fn push_after_finish_panics() {
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::new(params, GopPattern::new(3, 9).unwrap());
        online.finish();
        online.push(1000);
    }

    #[test]
    #[should_panic(expected = "beyond declared total")]
    fn push_beyond_total_panics() {
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, GopPattern::new(3, 9).unwrap(), 1);
        online.push(1000);
        online.push(1000);
    }

    #[test]
    fn finish_without_pictures_is_empty() {
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::new(params, GopPattern::new(3, 9).unwrap());
        assert!(online.finish().is_empty());
    }

    #[test]
    fn counters_track_progress() {
        let t = trace(18);
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let mut online = OnlineSmoother::for_stored(params, t.pattern, 18);
        for &s in &t.sizes {
            online.push(s);
        }
        assert_eq!(online.pictures_pushed(), 18);
        online.finish();
        assert_eq!(online.pictures_decided(), 18);
    }
}
