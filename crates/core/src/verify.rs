//! Theorem 1 verification.
//!
//! The paper's Theorem 1: if `S_i` is known at `t_i` (guaranteed by
//! `K ≥ 1`) and every selected rate satisfies
//! `r_L(0) ≤ r_i ≤ r_U(0)` (paper eqs. 5–6), then for every picture
//!
//! 1. `delay_i ≤ D` (eq. 7),
//! 2. `t_{i+1} ≤ i·τ + D` (eq. 8 — the lower bounds stay well defined),
//! 3. `t_{i+1} = d_i` (eq. 9 — continuous service).
//!
//! [`check_theorem1`] audits a finished [`SmoothingResult`] against all
//! of these, independently of the algorithm that produced it, so property
//! tests can hammer the implementation and catch any drift from the
//! theorem.

use crate::smoother::{SmoothingResult, TIME_EPS};
use serde::{Deserialize, Serialize};

/// Outcome of auditing one run against Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Theorem1Report {
    /// Number of pictures audited.
    pub pictures: usize,
    /// Pictures with `delay > D` (eq. 7 failures).
    pub delay_violations: usize,
    /// Largest observed delay.
    pub max_delay: f64,
    /// Pictures where `t_{i+1} > i·τ + D` (eq. 8 failures).
    pub start_bound_violations: usize,
    /// `true` if `t_{i+1} = d_i` throughout (eq. 9).
    pub continuous_service: bool,
    /// Pictures whose selected rate fell outside `[r_L(0), r_U(0)]`
    /// (hypothesis failures — should be zero for every built-in policy).
    pub rate_bound_violations: usize,
    /// Pictures whose last bit departed before the picture fully arrived
    /// (buffer underflow; possible only for `K = 0`).
    pub underflows: usize,
}

impl Theorem1Report {
    /// `true` when every property the theorem promises holds.
    pub fn holds(&self) -> bool {
        self.delay_violations == 0
            && self.start_bound_violations == 0
            && self.continuous_service
            && self.rate_bound_violations == 0
            && self.underflows == 0
    }
}

/// Does Theorem 1 apply to these parameters? (`K ≥ 1` and eq. (1).)
pub fn theorem_applies(result: &SmoothingResult) -> bool {
    result.params.k >= 1 && result.params.is_feasible()
}

/// Audits a run against Theorem 1 (see module docs).
///
/// Relative tolerance: rates are compared with a `1e-9` relative margin,
/// times with [`TIME_EPS`] — far finer than anything the figures resolve.
pub fn check_theorem1(result: &SmoothingResult) -> Theorem1Report {
    let p = &result.params;
    let tau = p.tau;
    let mut delay_violations = 0;
    let mut start_bound_violations = 0;
    let mut rate_bound_violations = 0;
    let mut max_delay = 0.0f64;

    for (idx, pic) in result.schedule.iter().enumerate() {
        max_delay = max_delay.max(pic.delay);
        if pic.delay > p.delay_bound + TIME_EPS {
            delay_violations += 1;
        }
        // eq. (8): the *next* start time is bounded; audit via this
        // picture's start: t_i <= (i-1)·tau + D, i.e. 0-based
        // t_i <= i·tau + D − tau... the paper's (8) in 0-based indexing
        // reads t_i ≤ (i−1)·τ + D for i ≥ 1 and t_0 = K·τ ≤ D (eq. 1).
        let bound = if idx == 0 {
            p.delay_bound
        } else {
            (idx as f64 - 1.0) * tau + p.delay_bound
        };
        if pic.start > bound + TIME_EPS {
            start_bound_violations += 1;
        }
        let tol = 1e-9 * pic.rate.max(1.0);
        if pic.rate < pic.lower0 - tol || pic.rate > pic.upper0 + tol {
            rate_bound_violations += 1;
        }
    }

    Theorem1Report {
        pictures: result.schedule.len(),
        delay_violations,
        max_delay,
        start_bound_violations,
        continuous_service: result.continuous_service(),
        rate_bound_violations,
        underflows: result.underflows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SmootherParams;
    use crate::smoother::smooth;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};
    use smooth_trace::VideoTrace;

    const TAU: f64 = 1.0 / 30.0;

    fn trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 210_000,
                PictureType::P => 95_000,
                PictureType::B => 22_000,
            })
            .collect();
        VideoTrace::new("t", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn theorem_holds_for_k_ge_1() {
        let t = trace(90);
        for k in 1..=9 {
            let p = SmootherParams::constant_slack(k, 9, TAU);
            let report = check_theorem1(&smooth(&t, p));
            assert!(report.holds(), "K={k}: {report:?}");
        }
    }

    #[test]
    fn theorem_applies_predicate() {
        let t = trace(18);
        let ok = smooth(&t, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        assert!(theorem_applies(&ok));
        let k0 = smooth(&t, SmootherParams::new_unchecked(0.2, 0, 9, TAU));
        assert!(!theorem_applies(&k0));
    }

    #[test]
    fn k0_report_shows_what_broke() {
        // K=0 with razor-thin slack: the theorem's guarantee is absent and
        // the audit must catch real failures rather than claim success.
        let pattern = GopPattern::new(3, 9).unwrap();
        let mut sizes = vec![4_000u64; 27];
        for (i, s) in sizes.iter_mut().enumerate() {
            if pattern.type_at(i) == PictureType::I {
                *s = 500_000;
            }
        }
        let t = VideoTrace::new("spiky", pattern, Resolution::VGA, 30.0, sizes).unwrap();
        let p = SmootherParams::new_unchecked(0.034, 0, 9, TAU);
        let report = check_theorem1(&smooth(&t, p));
        assert!(!report.holds());
        assert!(report.delay_violations > 0);
    }

    #[test]
    fn report_counts_are_consistent() {
        let t = trace(45);
        let r = smooth(&t, SmootherParams::at_30fps(0.15, 1, 9).unwrap());
        let report = check_theorem1(&r);
        assert_eq!(report.pictures, 45);
        assert_eq!(report.delay_violations, r.delay_violations());
        assert_eq!(report.underflows, r.underflows());
        assert_eq!(report.continuous_service, r.continuous_service());
        assert!((report.max_delay - r.max_delay()).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_trivially_holds() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let t = VideoTrace {
            name: "empty".into(),
            pattern,
            resolution: Resolution::VGA,
            fps: 30.0,
            sizes: vec![],
        };
        let r = smooth(&t, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        assert!(check_theorem1(&r).holds());
    }
}
