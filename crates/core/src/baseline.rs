//! Reference senders: ideal smoothing (paper §3.2) and the unsmoothed
//! per-picture sender (the paper's §1 motivation).
//!
//! Ideal smoothing sends every picture of a pattern at the pattern's
//! average rate `(S_i + … + S_{i+N−1}) / (N·τ)`. It is the gold standard
//! for smoothness, but requires the whole pattern to be buffered before
//! its first picture can go out, so per-picture delays are large — this
//! trade-off is exactly what Figure 5 plots.

use crate::smoother::{RateSegment, TIME_EPS};
use serde::{Deserialize, Serialize};
use smooth_trace::VideoTrace;

/// Per-picture schedule entry for a baseline sender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineSchedule {
    /// Display index.
    pub index: usize,
    /// When the sender began sending this picture (seconds).
    pub start: f64,
    /// Sending rate while this picture was being sent (bits/second).
    pub rate: f64,
    /// Departure time of the picture's last bit (seconds).
    pub depart: f64,
    /// `depart − index·τ`, comparable to the algorithm's delay.
    pub delay: f64,
}

/// Output of a baseline sender.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Per-picture schedule, display order.
    pub schedule: Vec<BaselineSchedule>,
    /// The rate function as maximal constant-rate segments.
    pub segments: Vec<RateSegment>,
}

impl BaselineResult {
    /// Per-picture delays. Allocation-free; `.collect()` when a `Vec` is
    /// needed.
    pub fn delays(&self) -> impl Iterator<Item = f64> + '_ {
        self.schedule.iter().map(|p| p.delay)
    }

    /// Largest per-picture delay.
    pub fn max_delay(&self) -> f64 {
        self.delays().fold(0.0, f64::max)
    }

    /// Largest rate in the rate function.
    pub fn max_rate(&self) -> f64 {
        self.segments.iter().map(|s| s.rate).fold(0.0, f64::max)
    }
}

/// Merges adjacent equal-rate abutting segments.
fn merge_segments(raw: Vec<RateSegment>) -> Vec<RateSegment> {
    let mut merged: Vec<RateSegment> = Vec::with_capacity(raw.len());
    for seg in raw {
        if seg.end <= seg.start + f64::EPSILON {
            continue;
        }
        match merged.last_mut() {
            Some(last)
                if (last.rate - seg.rate).abs() <= 1e-9 * last.rate.max(1.0)
                    && (seg.start - last.end).abs() <= TIME_EPS =>
            {
                last.end = seg.end;
            }
            _ => merged.push(seg),
        }
    }
    merged
}

/// Ideal smoothing (paper §3.2): each complete pattern is sent at its
/// average rate, starting once the whole pattern has arrived (and the
/// previous pattern has drained — with equal pattern durations these
/// coincide, so the server never idles after start-up).
///
/// A trailing partial pattern of `L` pictures is sent at `sum / (L·τ)`.
pub fn ideal_smooth(trace: &VideoTrace) -> BaselineResult {
    let tau = trace.tau();
    let n = trace.pattern.n();
    let mut schedule = Vec::with_capacity(trace.len());
    let mut segments = Vec::new();
    let mut depart = 0.0f64;

    let mut start_idx = 0;
    while start_idx < trace.len() {
        let len = n.min(trace.len() - start_idx);
        let chunk = &trace.sizes[start_idx..start_idx + len];
        let sum: u64 = chunk.iter().sum();
        let duration = len as f64 * tau;
        let rate = sum as f64 / duration;
        // The whole chunk has arrived at (start_idx + len)·τ.
        let available = (start_idx + len) as f64 * tau;
        let start = depart.max(available);
        segments.push(RateSegment {
            start,
            end: start + duration,
            rate,
        });
        let mut t = start;
        for (m, &bits) in chunk.iter().enumerate() {
            let index = start_idx + m;
            let dep = t + bits as f64 / rate;
            schedule.push(BaselineSchedule {
                index,
                start: t,
                rate,
                depart: dep,
                delay: dep - index as f64 * tau,
            });
            t = dep;
        }
        depart = start + duration;
        start_idx += len;
    }

    BaselineResult {
        schedule,
        segments: merge_segments(segments),
    }
}

/// The ideal-smoothing rate of each complete pattern, i.e. the paper's
/// `R(t)` levels (§3.2). Convenience wrapper over
/// [`VideoTrace::pattern_rates_bps`].
pub fn ideal_rates(trace: &VideoTrace) -> Vec<f64> {
    trace.pattern_rates_bps()
}

/// The unsmoothed sender of the paper's §1 example: each picture is
/// transmitted within its own picture period at `S_i / τ`, i.e. the
/// network sees the encoder's full burstiness (a 200-kbit I picture at
/// 30 pictures/s demands 6 Mbps for one period).
///
/// Modeled as cut-through: picture `i` is sent during `[iτ, (i+1)τ)`
/// while it arrives, giving a uniform delay of τ.
pub fn unsmoothed(trace: &VideoTrace) -> BaselineResult {
    let tau = trace.tau();
    let mut schedule = Vec::with_capacity(trace.len());
    let mut segments = Vec::with_capacity(trace.len());
    for (i, &bits) in trace.sizes.iter().enumerate() {
        let start = i as f64 * tau;
        let rate = bits as f64 / tau;
        let depart = start + tau;
        schedule.push(BaselineSchedule {
            index: i,
            start,
            rate,
            depart,
            delay: tau,
        });
        segments.push(RateSegment {
            start,
            end: depart,
            rate,
        });
    }
    BaselineResult {
        schedule,
        segments: merge_segments(segments),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};

    const TAU: f64 = 1.0 / 30.0;

    fn toy_trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000,
                PictureType::P => 90_000,
                PictureType::B => 18_000,
            })
            .collect();
        VideoTrace::new("toy", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn ideal_rate_is_pattern_average() {
        let t = toy_trace(27);
        let r = ideal_smooth(&t);
        let expected = (180_000.0 + 2.0 * 90_000.0 + 6.0 * 18_000.0) / (9.0 * TAU);
        // Constant trace: one merged segment at the pattern rate.
        assert_eq!(r.segments.len(), 1);
        assert!((r.segments[0].rate - expected).abs() < 1e-6);
    }

    #[test]
    fn ideal_first_pattern_starts_after_full_arrival() {
        let t = toy_trace(27);
        let r = ideal_smooth(&t);
        // Pattern 0 (pictures 0..9) has fully arrived at 9·τ = 0.3 s.
        assert!((r.schedule[0].start - 9.0 * TAU).abs() < 1e-12);
    }

    #[test]
    fn ideal_is_continuous_after_startup() {
        let t = toy_trace(45);
        let r = ideal_smooth(&t);
        for w in r.schedule.windows(2) {
            assert!((w[1].start - w[0].depart).abs() < 1e-9);
        }
    }

    #[test]
    fn ideal_delays_are_large() {
        // Paper Figure 5: ideal delays far exceed the algorithm's D = 0.1.
        let t = toy_trace(90);
        let r = ideal_smooth(&t);
        assert!(r.max_delay() > 0.3, "max ideal delay {}", r.max_delay());
        // And every delay is at least one pattern's buffering minus the
        // picture's own offset; in particular positive.
        assert!(r.delays().all(|d| d > 0.0));
    }

    #[test]
    fn ideal_delay_structure_sawtooth() {
        // Within a steady pattern the delays repeat pattern-periodically.
        let t = toy_trace(90);
        let r = ideal_smooth(&t);
        let d: Vec<f64> = r.delays().collect();
        for i in 9..81 {
            assert!((d[i] - d[i + 9]).abs() < 1e-9, "delay not periodic at {i}");
        }
    }

    #[test]
    fn ideal_partial_tail() {
        let t = toy_trace(21); // 2 full patterns + 3 pictures
        let r = ideal_smooth(&t);
        assert_eq!(r.schedule.len(), 21);
        let tail_rate = r.schedule[20].rate;
        let tail_sum: u64 = t.sizes[18..].iter().sum();
        assert!((tail_rate - tail_sum as f64 / (3.0 * TAU)).abs() < 1e-6);
    }

    #[test]
    fn ideal_conserves_bits() {
        let t = toy_trace(36);
        let r = ideal_smooth(&t);
        let sent: f64 = r.segments.iter().map(|s| (s.end - s.start) * s.rate).sum();
        assert!((sent / t.total_bits() as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unsmoothed_peak_matches_biggest_picture() {
        let t = toy_trace(27);
        let r = unsmoothed(&t);
        assert!((r.max_rate() - 180_000.0 * 30.0).abs() < 1e-6);
        assert!(r.delays().all(|d| (d - TAU).abs() < 1e-12));
    }

    #[test]
    fn unsmoothed_conserves_bits() {
        let t = toy_trace(27);
        let r = unsmoothed(&t);
        let sent: f64 = r.segments.iter().map(|s| (s.end - s.start) * s.rate).sum();
        assert!((sent / t.total_bits() as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unsmoothed_is_much_burstier_than_ideal() {
        let t = toy_trace(90);
        let burst = unsmoothed(&t).max_rate();
        let smooth = ideal_smooth(&t).max_rate();
        assert!(burst > 3.0 * smooth, "unsmoothed {burst} vs ideal {smooth}");
    }
}
