//! The lossless smoothing algorithm (paper §4, Figure 2).
//!
//! ## System model (0-based indices)
//!
//! The paper numbers pictures from 1; this implementation uses 0-based
//! display indices, so every formula below is the paper's with `i → i+1`
//! substituted. Picture `i` arrives at the smoothing queue during
//! `(iτ, (i+1)τ]` and is completely known at `(i+1)τ`.
//!
//! ```text
//! t_i = max(d_{i−1}, (i+K)·τ)          start of service     (paper eq. 2)
//! d_i = t_i + S_i / r_i                departure            (paper eq. 3)
//! delay_i = d_i − i·τ                  per-picture delay    (paper eq. 4)
//! ```
//!
//! ## Rate bounds with lookahead `h` (paper eqs. 12–13)
//!
//! ```text
//! r_L(h) = Σ_{m=0..h} S_{i+m} / (D + (i+h)·τ − t_i)
//! r_U(h) = Σ_{m=0..h} S_{i+m} / ((i+h+K+1)·τ − t_i)   [∞ if denom ≤ 0]
//! ```
//!
//! Sizes beyond the known horizon are estimates; `r_L(0)`/`r_U(0)` use the
//! exact `S_i` and are the Theorem 1 bounds, so the delay bound and
//! continuous service hold for `K ≥ 1` regardless of estimation error.
//!
//! ## Rate selection
//!
//! The inner loop intersects the `[r_L(h), r_U(h)]` intervals for
//! `h = 0 .. H−1`:
//!
//! * **early exit** (`lower > upper` at some `h`): pick the bound that did
//!   *not* move — `upper` if the lower bound rose, `lower` if the upper
//!   bound fell — which keeps the rate valid for the first `h` pictures
//!   and minimizes future forced changes;
//! * **normal exit** (`h = H` reached): keep the previous rate unless it
//!   falls outside `[lower, upper]` ([`RateSelection::Basic`]), or snap to
//!   the pattern moving average `Σ/(N·τ)` clamped to the bounds
//!   ([`RateSelection::MovingAverage`], the paper's eq. 15 modification).
//!
//! The very first picture uses the interval midpoint.

use crate::estimate::{PatternEstimator, SizeEstimator};
use crate::lookahead::LookaheadWindow;
use crate::params::SmootherParams;
use serde::{Deserialize, Serialize};
use smooth_trace::VideoTrace;

/// Tolerance for floating-point comparisons of times (seconds). One
/// nanosecond — ten orders of magnitude below a picture period.
pub const TIME_EPS: f64 = 1e-9;

/// Serde adapter for an `f64` that may be `+∞` (JSON has no infinity:
/// encode it as `null`).
mod serde_maybe_infinite {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// How the rate is chosen on normal (full-lookahead) exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateSelection {
    /// Figure 2 as printed: keep the previous rate when it is still within
    /// bounds. Produces the fewest rate changes.
    Basic,
    /// The §4.4 modification: select the moving average `sum / (N·τ)`
    /// (clamped to the bounds). More, smaller rate changes; tracks the
    /// ideal rate function more closely (smaller area difference).
    MovingAverage,
}

/// The scheduling decision for one picture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PictureSchedule {
    /// Display index of the picture.
    pub index: usize,
    /// `t_i` — when the server began sending it (seconds).
    pub start: f64,
    /// `r_i` — the selected sending rate (bits/second).
    pub rate: f64,
    /// `d_i` — when its last bit left (seconds).
    pub depart: f64,
    /// `delay_i = d_i − i·τ` — includes encoding, queueing, and sending
    /// delay (paper eq. 4).
    pub delay: f64,
    /// Exact Theorem 1 lower bound `r_L(0)` at selection time.
    pub lower0: f64,
    /// Exact Theorem 1 upper bound `r_U(0)` at selection time. May be
    /// `+∞` (no continuous-service constraint); serialized as JSON `null`
    /// and restored as `+∞`.
    #[serde(with = "serde_maybe_infinite")]
    pub upper0: f64,
    /// Number of pictures the inner loop examined (1 ..= H).
    pub lookahead_used: usize,
}

/// Complete output of a smoothing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmoothingResult {
    /// Parameters the run used.
    pub params: SmootherParams,
    /// Per-picture schedule, display order.
    pub schedule: Vec<PictureSchedule>,
}

/// A maximal interval of constant sending rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSegment {
    /// Segment start time (seconds).
    pub start: f64,
    /// Segment end time (seconds).
    pub end: f64,
    /// Rate over the segment (bits/second). Zero for idle gaps.
    pub rate: f64,
}

impl SmoothingResult {
    /// Selected rates, display order. Allocation-free; `.collect()` when a
    /// `Vec` is needed.
    pub fn rates(&self) -> impl Iterator<Item = f64> + '_ {
        self.schedule.iter().map(|p| p.rate)
    }

    /// Per-picture delays, display order. Allocation-free; `.collect()`
    /// when a `Vec` is needed.
    pub fn delays(&self) -> impl Iterator<Item = f64> + '_ {
        self.schedule.iter().map(|p| p.delay)
    }

    /// Largest per-picture delay (0 for an empty schedule).
    pub fn max_delay(&self) -> f64 {
        self.delays().fold(0.0, f64::max)
    }

    /// Number of pictures whose delay exceeds the bound `D`
    /// (beyond [`TIME_EPS`]). Theorem 1: zero whenever `K ≥ 1`.
    pub fn delay_violations(&self) -> usize {
        self.schedule
            .iter()
            .filter(|p| p.delay > self.params.delay_bound + TIME_EPS)
            .count()
    }

    /// Number of times the rate changed from one picture to the next —
    /// the paper's second quantitative smoothness measure (§5.2).
    pub fn rate_changes(&self) -> usize {
        self.schedule
            .windows(2)
            .filter(|w| w[1].rate != w[0].rate)
            .count()
    }

    /// `true` if `t_{i+1} = d_i` for every consecutive pair: the server
    /// never idles (paper's *continuous service* property, guaranteed for
    /// `K ≥ 1` by Theorem 1).
    pub fn continuous_service(&self) -> bool {
        self.schedule
            .windows(2)
            .all(|w| (w[1].start - w[0].depart).abs() <= TIME_EPS)
    }

    /// Number of pictures whose last bit departed before the picture had
    /// completely arrived — buffer underflow, possible only for `K = 0`
    /// (paper §4.1, footnote 11).
    pub fn underflows(&self) -> usize {
        let tau = self.params.tau;
        self.schedule
            .iter()
            .filter(|p| p.depart + TIME_EPS < (p.index as f64 + 1.0) * tau)
            .count()
    }

    /// When the final bit left the smoother.
    pub fn completion_time(&self) -> f64 {
        self.schedule.last().map(|p| p.depart).unwrap_or(0.0)
    }

    /// The rate function `r(t)` as maximal constant-rate segments, with
    /// explicit zero-rate segments for any idle gaps (idle gaps occur only
    /// for `K = 0` configurations).
    pub fn rate_segments(&self) -> Vec<RateSegment> {
        let mut out: Vec<RateSegment> = Vec::with_capacity(self.schedule.len());
        for p in &self.schedule {
            if let Some(last) = out.last() {
                if p.start > last.end + TIME_EPS {
                    out.push(RateSegment {
                        start: last.end,
                        end: p.start,
                        rate: 0.0,
                    });
                }
            }
            out.push(RateSegment {
                start: p.start,
                end: p.depart,
                rate: p.rate,
            });
        }
        // Merge adjacent equal-rate segments so the result is maximal.
        let mut merged: Vec<RateSegment> = Vec::with_capacity(out.len());
        for seg in out {
            match merged.last_mut() {
                Some(last) if last.rate == seg.rate && (seg.start - last.end).abs() <= TIME_EPS => {
                    last.end = seg.end;
                }
                _ => merged.push(seg),
            }
        }
        merged
    }
}

/// Everything needed to schedule one picture — shared by the offline
/// [`Smoother`] and the streaming [`crate::online::OnlineSmoother`], so the
/// two cannot drift apart.
pub(crate) struct DecideCtx<'a> {
    pub params: &'a SmootherParams,
    /// Pre-resolved lookahead sizes: `sizes_ahead[m]` is `S_{i+m}` — the
    /// exact size if picture `i+m` has arrived by `t_i`, the caller's
    /// estimate otherwise. Already truncated to
    /// `min(H, horizon − i)` entries, so the inner loop is pure slice
    /// arithmetic with no dynamic dispatch. Callers fill one reusable
    /// scratch buffer per run instead of allocating per picture.
    pub sizes_ahead: &'a [f64],
    /// Pattern period `N` in force at picture `i` — used only by the
    /// moving-average selection (paper eq. 15).
    pub pattern_n: usize,
    pub selection: RateSelection,
    /// Display index of the picture being scheduled.
    pub i: usize,
    /// Start of service `t_i` (eq. 2), computed once by the caller via
    /// [`SmootherParams::start_time`] — callers need it earlier than the
    /// decision (to derive the arrived-watermark), so it is passed in
    /// rather than re-derived here.
    pub start: f64,
    /// Previously selected rate, if any.
    pub prev_rate: Option<f64>,
    /// The actual size of picture `i`, used for the departure time.
    /// (For `K ≥ 1` this is always `visible[i]`; for `K = 0` the rate may
    /// be chosen from an estimate while the departure still reflects the
    /// bits actually sent.)
    pub size_i: u64,
    /// Whether every `sizes_ahead` value is a nonnegative integer-valued
    /// `f64` with all window partial sums below 2⁵³ (see
    /// [`crate::estimate::SizeEstimator::integral_estimates`]). IEEE
    /// addition of such values is exact, so the prefix sums may be
    /// reassociated into a parallel scan without changing any output
    /// bit. `false` forces the strictly sequential summation.
    pub exact_prefix: bool,
}

pub use crate::simd::BlockLanes;
use crate::simd::{bound_blocks8, BoundState, DECIDE_BLOCK};

/// Schedules one picture: the body of the paper's outer `repeat` loop.
///
/// Computes the same IEEE divisions as the pre-PR scalar loop retained
/// in [`crate::reference::decide_one_reference`] — only grouped into
/// 8-lane blocks ([`bound_blocks8`]) so they vectorize, with the scalar
/// loop kept verbatim for the sub-block tail. The `incremental_props`
/// proptests pin the two bit-identical.
///
/// Inlined into each caller's loop so the `DecideCtx` fields stay in
/// registers instead of being marshalled through the stack per picture.
///
/// `lanes` is the block-pass scratch, hoisted to the caller so its
/// zero-initialisation is paid once per run rather than once per
/// picture. Every lane element is written before it is read within each
/// [`bound_blocks8`] call, so reuse across pictures cannot leak state.
#[inline(always)]
pub(crate) fn decide_one(ctx: &DecideCtx<'_>, lanes: &mut BlockLanes) -> PictureSchedule {
    let tau = ctx.params.tau;
    let d_bound = ctx.params.delay_bound;
    let k = ctx.params.k;
    let i = ctx.i;

    // t_i := max(d_{i-1}, (i + K) * tau)    {paper eq. 2, via start_time}
    let time = ctx.start;

    // Inner loop: intersect [r_L(h), r_U(h)] for h = 0..H-1 (the slice is
    // pre-truncated to the lookahead window, paper's `seq_end` included).
    let mut st = BoundState {
        sum: 0.0,
        lower: 0.0,
        upper: f64::INFINITY,
        lower_old: 0.0,
        upper_old: f64::INFINITY,
        lower0: 0.0,
        upper0: f64::INFINITY,
    };
    let mut h = 0usize;
    let mut crossed = false;

    let sizes_ahead = ctx.sizes_ahead;
    let len = sizes_ahead.len();
    if len >= DECIDE_BLOCK {
        (h, crossed) = bound_blocks8(
            sizes_ahead,
            i,
            k,
            tau,
            d_bound,
            time,
            ctx.exact_prefix,
            lanes,
            &mut st,
        );
    }
    // Scalar tail for the last `len % 8` steps — the pre-PR loop verbatim.
    while !crossed && h < len {
        st.sum += sizes_ahead[h];
        st.lower_old = st.lower;
        st.upper_old = st.upper;
        let dl = d_bound + (i + h) as f64 * tau - time;
        let new_lower = if dl > 0.0 { st.sum / dl } else { f64::INFINITY };
        let du = (i + h + k + 1) as f64 * tau - time;
        let new_upper = if du > 0.0 { st.sum / du } else { f64::INFINITY };
        st.lower = st.lower.max(new_lower);
        st.upper = st.upper.min(new_upper);
        if h == 0 {
            st.lower0 = new_lower;
            st.upper0 = new_upper;
        }
        h += 1;
        if st.lower > st.upper {
            crossed = true;
        }
    }

    finish_decision(
        ctx,
        time,
        st.sum,
        st.lower,
        st.upper,
        st.lower_old,
        st.upper_old,
        st.lower0,
        st.upper0,
        h,
        crossed,
    )
}

/// Turns the bound-intersection loop's exit state into a scheduled
/// picture: rate selection, grid snapping, departure. Shared verbatim by
/// [`decide_one`] and the frozen reference loop so the two can only
/// differ in how they compute the (identical) bounds. Inlined, as the
/// pre-PR code (where this tail was part of the decision loop body) was.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_decision(
    ctx: &DecideCtx<'_>,
    time: f64,
    sum: f64,
    lower: f64,
    upper: f64,
    lower_old: f64,
    upper_old: f64,
    lower0: f64,
    upper0: f64,
    h: usize,
    crossed: bool,
) -> PictureSchedule {
    let tau = ctx.params.tau;
    let i = ctx.i;

    let rate = if crossed {
        // Early exit: with feasible parameters exactly one bound moved in
        // the crossing step (see the paper's case analysis after
        // Figure 2). Choosing the unmoved bound keeps the rate feasible
        // for lookahead h−1 — and in particular for h = 0, so Theorem 1
        // still applies.
        if lower > lower_old {
            // The lower bound rose past the (unchanged) upper bound:
            // `upper == upper_old` here whenever eq. (1) holds.
            upper.min(upper_old)
        } else {
            lower
        }
    } else {
        // Normal exit: h* >= H-1 (or the sequence ended).
        match ctx.prev_rate {
            // {rate for first picture}. For i = 0 the upper bound is
            // always finite: t_0 = K·τ, so r_U(h) has a positive
            // denominator (h+1)·τ for every h.
            None => 0.5 * (lower + upper),
            Some(prev) => {
                let candidate = match ctx.selection {
                    RateSelection::Basic => prev,
                    // {possible modification here}: eq. (15).
                    RateSelection::MovingAverage => sum / (ctx.pattern_n as f64 * tau),
                };
                candidate.clamp(lower, upper)
            }
        }
    };

    // Optional channel rate grid: snap to a multiple of the grid without
    // leaving [lower, upper] (prefer up: a higher rate can only shrink
    // delays). Skipped when no multiple fits the interval.
    let rate = match ctx.params.rate_grid_bps {
        Some(grid) if rate.is_finite() && rate > 0.0 => {
            let up = (rate / grid).ceil() * grid;
            let down = (rate / grid).floor() * grid;
            if up <= upper {
                up.max(lower.min(up)) // up >= rate >= lower already
            } else if down >= lower && down > 0.0 {
                down
            } else {
                rate
            }
        }
        _ => rate,
    };

    // Degenerate configurations (K = 0 with an unsatisfiable D) can
    // produce an unusable rate; fall back to draining the picture within
    // one period. Cannot occur when eq. (1) holds and K >= 1.
    let rate = if rate.is_finite() && rate > 0.0 {
        rate
    } else {
        ctx.size_i as f64 / tau
    };

    let depart_new = time + ctx.size_i as f64 / rate;
    PictureSchedule {
        index: i,
        start: time,
        rate,
        depart: depart_new,
        delay: depart_new - i as f64 * tau,
        lower0,
        upper0,
        lookahead_used: h,
    }
}

/// Reusable working memory for smoothing runs: the incremental lookahead
/// window plus any future per-run buffers.
///
/// One `SmoothScratch` serves any number of sequential runs — across
/// pictures, traces, and parameter points — so the hot path allocates
/// nothing once the window has reached its steady-state capacity. Create
/// one per worker thread in batch settings (see [`smooth_batch`]).
#[derive(Debug, Default)]
pub struct SmoothScratch {
    pub(crate) window: LookaheadWindow,
}

impl SmoothScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The smoothing algorithm bound to a trace.
pub struct Smoother<'a> {
    params: SmootherParams,
    trace: &'a VideoTrace,
    estimator: &'a dyn SizeEstimator,
    selection: RateSelection,
}

impl<'a> Smoother<'a> {
    /// Creates a smoother with an explicit estimator and rate selection.
    pub fn new(
        trace: &'a VideoTrace,
        params: SmootherParams,
        estimator: &'a dyn SizeEstimator,
        selection: RateSelection,
    ) -> Self {
        Smoother {
            params,
            trace,
            estimator,
            selection,
        }
    }

    /// Runs the algorithm over the whole trace (the paper's procedure
    /// `smooth`, Figure 2), with private scratch.
    pub fn run(&self) -> SmoothingResult {
        self.run_with_scratch(&mut SmoothScratch::new())
    }

    /// [`run`](Self::run) with caller-provided working memory, so batch
    /// drivers amortize buffer growth across many runs.
    ///
    /// Per picture this costs the paper's O(H) interval-intersection loop
    /// plus amortized O(1) lookahead maintenance (the
    /// [`LookaheadWindow`] slides instead of refilling) — and, after
    /// warm-up, zero allocations.
    pub fn run_with_scratch(&self, scratch: &mut SmoothScratch) -> SmoothingResult {
        run_core(
            self.trace,
            self.params,
            self.estimator,
            self.selection,
            scratch,
        )
    }
}

/// The offline smoothing loop, generic over the estimator so the default
/// path ([`smooth`]/[`smooth_with_scratch`] with a concrete
/// [`PatternEstimator`]) monomorphizes — the closed-form estimate inlines
/// into the window engine with no virtual dispatch. [`Smoother`] calls
/// this with `E = dyn SizeEstimator`, keeping the flexible API.
fn run_core<E: SizeEstimator + ?Sized>(
    trace: &VideoTrace,
    params: SmootherParams,
    estimator: &E,
    selection: RateSelection,
    scratch: &mut SmoothScratch,
) -> SmoothingResult {
    let tau = params.tau;
    let k = params.k;
    let h_max = params.h;
    let n_total = trace.len();
    let sizes = &trace.sizes;
    // Hoisted out of the per-picture loop: the pattern model and the
    // estimator's invalidation contract.
    let pattern = trace.pattern;
    let pattern_n = pattern.n();
    let invalidation = estimator.invalidation();
    // Order-free prefix sums are bit-identical exactly when every window
    // slot is a nonnegative integer-valued f64 (true sizes are u64 casts,
    // exact below 2^53; the estimator vouches for its estimates) and no
    // window partial sum can reach 2^53, where f64 addition starts to
    // round. The margin of 2 ulps absorbs rounding in the check itself.
    let exact_prefix = match estimator.integral_estimates() {
        Some(bound) => {
            let max_size = sizes.iter().copied().max().unwrap_or(0);
            max_size < (1u64 << 53)
                && (max_size as f64).max(bound) * ((h_max + 1) as f64) < 9007199254740990.0
        }
        None => false,
    };
    let window = &mut scratch.window;
    window.reset();

    let mut schedule = Vec::with_capacity(n_total);
    let mut depart = 0.0f64;
    let mut prev_rate: Option<f64> = None;
    let mut lanes = BlockLanes::default();

    for i in 0..n_total {
        let time = params.start_time(i, depart);

        // Pictures fully arrived by `time`: j with (j+1)τ ≤ time.
        // Pictures i .. i+K−1 are arrived by construction of `time`;
        // the max() guards the exact-boundary float case. Monotone in
        // i (t_i is), as the window engine requires. `as usize`
        // truncates toward zero, which equals `.floor()` for the
        // nonnegative quotient — without the `floor` libcall baseline
        // x86-64 needs.
        let arrived_by_time = (((time + TIME_EPS) / tau) as usize).min(n_total);
        let arrived = arrived_by_time.max((i + k).min(n_total));

        let visible = &sizes[..arrived];
        let sizes_ahead = window.advance(
            i,
            h_max.min(n_total - i),
            visible,
            invalidation,
            pattern_n,
            |j| estimator.estimate(j, visible, &pattern),
        );
        let ctx = DecideCtx {
            params: &params,
            sizes_ahead,
            pattern_n,
            selection,
            i,
            start: time,
            prev_rate,
            size_i: sizes[i],
            exact_prefix,
        };
        let decision = decide_one(&ctx, &mut lanes);
        depart = decision.depart;
        prev_rate = Some(decision.rate);
        schedule.push(decision);
    }

    SmoothingResult { params, schedule }
}

/// Smooths a trace with the paper's defaults: pattern-based size
/// estimation and basic rate selection.
pub fn smooth(trace: &VideoTrace, params: SmootherParams) -> SmoothingResult {
    let estimator = PatternEstimator::default();
    Smoother::new(trace, params, &estimator, RateSelection::Basic).run()
}

/// Smooths a trace with an explicit estimator and rate-selection policy.
pub fn smooth_with(
    trace: &VideoTrace,
    params: SmootherParams,
    estimator: &dyn SizeEstimator,
    selection: RateSelection,
) -> SmoothingResult {
    Smoother::new(trace, params, estimator, selection).run()
}

/// [`smooth`] with caller-provided scratch — the building block for batch
/// drivers that reuse working memory across traces.
pub fn smooth_with_scratch(
    trace: &VideoTrace,
    params: SmootherParams,
    scratch: &mut SmoothScratch,
) -> SmoothingResult {
    // Concrete estimator type: run_core monomorphizes and the closed-form
    // estimate inlines into the window engine.
    let estimator = PatternEstimator::default();
    run_core(trace, params, &estimator, RateSelection::Basic, scratch)
}

/// Smooths many (trace, params) jobs sequentially through one reused
/// [`SmoothScratch`], with the paper's default estimator and selection.
///
/// This is the serial batch primitive: after the first job's warm-up the
/// per-picture hot path performs no allocations at all. The parallel
/// counterpart (`smooth_batch` in the `smooth-sweep` crate) shards jobs
/// across workers, each holding its own scratch.
pub fn smooth_batch<'a>(
    jobs: impl IntoIterator<Item = (&'a VideoTrace, SmootherParams)>,
    scratch: &mut SmoothScratch,
) -> Vec<SmoothingResult> {
    jobs.into_iter()
        .map(|(trace, params)| smooth_with_scratch(trace, params, scratch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::OracleEstimator;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};

    const TAU: f64 = 1.0 / 30.0;

    fn toy_trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 200_000,
                PictureType::P => 100_000,
                PictureType::B => 20_000,
            })
            .collect();
        VideoTrace::new("toy", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    fn params(d: f64, k: usize, h: usize) -> SmootherParams {
        SmootherParams::at_30fps(d, k, h).unwrap()
    }

    #[test]
    fn theorem1_holds_on_constant_pattern() {
        let trace = toy_trace(90);
        for (d, k, h) in [
            (0.1, 1, 9),
            (0.2, 1, 9),
            (0.3, 1, 9),
            (0.2, 3, 9),
            (0.4, 9, 9),
        ] {
            let r = smooth(&trace, params(d, k, h));
            assert_eq!(r.delay_violations(), 0, "D={d} K={k} H={h}");
            assert!(r.continuous_service(), "D={d} K={k} H={h}");
            assert!(r.max_delay() <= d + TIME_EPS);
            assert_eq!(r.underflows(), 0);
        }
    }

    #[test]
    fn selected_rates_respect_theorem1_bounds() {
        let trace = toy_trace(90);
        let r = smooth(&trace, params(0.2, 1, 9));
        for p in &r.schedule {
            assert!(
                p.rate >= p.lower0 - 1e-6 && p.rate <= p.upper0 + 1e-6,
                "picture {}: rate {} outside [{}, {}]",
                p.index,
                p.rate,
                p.lower0,
                p.upper0
            );
        }
    }

    #[test]
    fn perfectly_periodic_trace_needs_few_rate_changes() {
        // After warm-up (one pattern of estimates), a perfectly periodic
        // trace with H = N should settle to an almost constant rate.
        let trace = toy_trace(180);
        let r = smooth(&trace, params(0.3, 1, 9));
        // Rate changes confined to the first patterns; the steady state
        // tail is constant.
        let rates: Vec<f64> = r.rates().collect();
        let tail = &rates[36..];
        let changes = tail.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(
            changes,
            0,
            "steady state should hold one rate: {:?}",
            &tail[..12]
        );
    }

    #[test]
    fn steady_rate_approximates_pattern_average() {
        let trace = toy_trace(180);
        let r = smooth(&trace, params(0.3, 1, 9));
        let pattern_rate = (200_000.0 + 2.0 * 100_000.0 + 6.0 * 20_000.0) / (9.0 * TAU);
        let settled = r.schedule[90].rate;
        assert!(
            (settled / pattern_rate - 1.0).abs() < 0.25,
            "settled {settled} vs pattern {pattern_rate}"
        );
    }

    #[test]
    fn k0_can_violate_delay_bound() {
        // Paper §5.2: "For K = 0, however, we did observe some delay bound
        // violations when the slack in the delay bound was deliberately
        // made very small."
        let pattern = GopPattern::new(3, 9).unwrap();
        // A huge I picture after tiny ones defeats K = 0: the rate chosen
        // for earlier pictures was based on estimates; with no slack the
        // bound breaks.
        let mut sizes = vec![5_000u64; 18];
        for (i, s) in sizes.iter_mut().enumerate() {
            if pattern.type_at(i) == PictureType::I {
                *s = 400_000;
            }
        }
        let trace = VideoTrace::new("spiky", pattern, Resolution::VGA, 30.0, sizes).unwrap();
        let p = SmootherParams::new_unchecked(0.034, 0, 9, TAU); // slack ~ 0.0007s
        let r = smooth(&trace, p);
        assert!(
            r.delay_violations() > 0,
            "expected violations at K=0 with near-zero slack; max delay {}",
            r.max_delay()
        );
    }

    #[test]
    fn k1_never_violates_even_with_adversarial_sizes() {
        // Same spiky trace, K = 1, minimal feasible D: Theorem 1 holds.
        let pattern = GopPattern::new(3, 9).unwrap();
        let mut sizes = vec![5_000u64; 45];
        for (i, s) in sizes.iter_mut().enumerate() {
            if pattern.type_at(i) == PictureType::I {
                *s = 400_000;
            }
        }
        let trace = VideoTrace::new("spiky", pattern, Resolution::VGA, 30.0, sizes).unwrap();
        let p = params(2.0 * TAU, 1, 9); // D exactly (K+1)tau
        let r = smooth(&trace, p);
        assert_eq!(r.delay_violations(), 0);
        assert!(r.continuous_service());
    }

    #[test]
    fn first_picture_starts_at_k_tau() {
        let trace = toy_trace(18);
        for k in 0..4 {
            let p = SmootherParams::new_unchecked(0.4, k, 9, TAU);
            let r = smooth(&trace, p);
            assert!(
                (r.schedule[0].start - k as f64 * TAU).abs() < 1e-12,
                "K={k}: start {}",
                r.schedule[0].start
            );
        }
    }

    #[test]
    fn departures_are_monotone_and_positive() {
        let trace = toy_trace(90);
        let r = smooth(&trace, params(0.2, 1, 9));
        let mut last = 0.0;
        for p in &r.schedule {
            assert!(p.rate > 0.0);
            assert!(p.depart > p.start);
            assert!(p.start >= last - TIME_EPS);
            last = p.depart;
        }
    }

    #[test]
    fn moving_average_changes_more_often_but_tracks_mean() {
        let trace = toy_trace(180);
        let p = params(0.2, 1, 9);
        let est = PatternEstimator::default();
        let basic = smooth_with(&trace, p, &est, RateSelection::Basic);
        let ma = smooth_with(&trace, p, &est, RateSelection::MovingAverage);
        // Paper §4.4: "The modified algorithm produces numerous small rate
        // changes over time". (On a perfectly periodic trace both settle;
        // compare on a noisy one instead - done in integration tests. Here
        // just verify MA also satisfies the theorem.)
        assert_eq!(ma.delay_violations(), 0);
        assert!(ma.continuous_service());
        assert_eq!(basic.delay_violations(), 0);
    }

    #[test]
    fn oracle_estimator_also_satisfies_theorem() {
        let trace = toy_trace(90);
        let est = OracleEstimator {
            sizes: trace.sizes.clone(),
        };
        let r = smooth_with(&trace, params(0.2, 1, 9), &est, RateSelection::Basic);
        assert_eq!(r.delay_violations(), 0);
        assert!(r.continuous_service());
    }

    #[test]
    fn h1_disables_lookahead() {
        let trace = toy_trace(90);
        let r = smooth(&trace, params(0.2, 1, 1));
        assert!(r.schedule.iter().all(|p| p.lookahead_used == 1));
        assert_eq!(r.delay_violations(), 0);
        assert!(r.continuous_service());
    }

    #[test]
    fn lookahead_capped_by_trace_end() {
        let trace = toy_trace(10);
        let r = smooth(&trace, params(0.3, 1, 9));
        let last = r.schedule.last().unwrap();
        assert_eq!(
            last.lookahead_used, 1,
            "last picture can only examine itself"
        );
        assert_eq!(
            r.schedule[5].lookahead_used.min(5),
            5,
            "picture 5 sees 5 pictures"
        );
    }

    #[test]
    fn single_picture_trace() {
        let pattern = GopPattern::new(1, 1).unwrap();
        let trace = VideoTrace::new("one", pattern, Resolution::VGA, 30.0, vec![90_000]).unwrap();
        let r = smooth(&trace, params(0.1, 1, 1));
        assert_eq!(r.schedule.len(), 1);
        assert_eq!(r.delay_violations(), 0);
        assert_eq!(r.rate_changes(), 0);
        assert!(r.continuous_service()); // vacuous
    }

    #[test]
    fn rate_segments_abut_under_continuous_service() {
        let trace = toy_trace(90);
        let r = smooth(&trace, params(0.2, 1, 9));
        let segs = r.rate_segments();
        assert!(segs.iter().all(|s| s.rate > 0.0), "no idle gaps for K >= 1");
        for w in segs.windows(2) {
            assert!((w[1].start - w[0].end).abs() <= TIME_EPS);
            assert_ne!(w[1].rate, w[0].rate, "segments must be maximal");
        }
        // Total bits sent equals total trace bits.
        let sent: f64 = segs.iter().map(|s| (s.end - s.start) * s.rate).sum();
        assert!((sent / trace.total_bits() as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_changes_counts_transitions() {
        let trace = toy_trace(90);
        let r = smooth(&trace, params(0.2, 1, 9));
        let rates: Vec<f64> = r.rates().collect();
        let manual = rates.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(r.rate_changes(), manual);
    }

    #[test]
    fn increasing_d_never_hurts_smoothness() {
        // Figure 6's monotone trend, in miniature: SD of rates decreases
        // (weakly) as D grows on the periodic toy trace.
        let trace = toy_trace(180);
        let sd = |d: f64| {
            let r = smooth(&trace, params(d, 1, 9));
            let rates: Vec<f64> = r.rates().collect();
            let m = rates.iter().sum::<f64>() / rates.len() as f64;
            (rates.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / rates.len() as f64).sqrt()
        };
        assert!(
            sd(0.30) <= sd(0.10) + 1.0,
            "sd(0.3)={} sd(0.1)={}",
            sd(0.30),
            sd(0.10)
        );
    }

    #[test]
    fn rate_grid_snaps_to_multiples_and_keeps_theorem() {
        let trace = toy_trace(180);
        let grid = 64_000.0; // p x 64 kbit/s
        let p = params(0.2, 1, 9).with_rate_grid(grid);
        let r = smooth(&trace, p);
        assert_eq!(r.delay_violations(), 0);
        assert!(r.continuous_service());
        // Nearly every rate lands on the grid; the rare off-grid rate is
        // a bound clamp where no multiple fits the interval.
        let on_grid = r
            .rates()
            .filter(|&x| (x / grid - (x / grid).round()).abs() < 1e-9)
            .count();
        assert!(
            on_grid * 10 >= r.schedule.len() * 9,
            "{on_grid}/{} rates on the 64k grid",
            r.schedule.len()
        );
        // And the grid coarsens the rate function: no more changes than
        // the exact algorithm has.
        let exact = smooth(&trace, params(0.2, 1, 9));
        assert!(r.rate_changes() <= exact.rate_changes() + 5);
    }

    #[test]
    fn rate_grid_respects_theorem_bounds() {
        let trace = toy_trace(90);
        let p = params(0.15, 1, 9).with_rate_grid(100_000.0);
        let r = smooth(&trace, p);
        for pic in &r.schedule {
            assert!(
                pic.rate >= pic.lower0 - 1e-6 && pic.rate <= pic.upper0 + 1e-6,
                "picture {}: snapped rate {} outside [{}, {}]",
                pic.index,
                pic.rate,
                pic.lower0,
                pic.upper0
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad rate grid")]
    fn rate_grid_rejects_zero() {
        params(0.2, 1, 9).with_rate_grid(0.0);
    }

    #[test]
    fn empty_trace_rejected_upstream_but_smoother_is_total() {
        // VideoTrace::new rejects empties, but a manually built one should
        // still not panic the smoother.
        let pattern = GopPattern::new(3, 9).unwrap();
        let trace = VideoTrace {
            name: "empty".into(),
            pattern,
            resolution: Resolution::VGA,
            fps: 30.0,
            sizes: vec![],
        };
        let r = smooth(&trace, params(0.2, 1, 9));
        assert!(r.schedule.is_empty());
        assert_eq!(r.completion_time(), 0.0);
        assert_eq!(r.rate_segments().len(), 0);
    }
}
