//! Naive reference implementations, retained as test oracles.
//!
//! PR 3 replaced the per-picture O(H) lookahead refill and the O(n/N)
//! pattern walk-back with the incremental
//! [`crate::lookahead::LookaheadWindow`] engine and a closed-form O(1)
//! [`crate::estimate::PatternEstimator`]. The schedules are required to be
//! **bit-identical**, so the superseded code lives on here — simple enough
//! to audit by eye against the paper — and the proptests in
//! `crates/core/tests/incremental_props.rs` plus the throughput benches in
//! `crates/bench` pin the fast paths against it.
//!
//! Nothing in this module is called by production code paths.

use crate::estimate::{DefaultSizes, PatternEstimator, SizeEstimator};
use crate::params::SmootherParams;
use crate::smoother::{DecideCtx, PictureSchedule, RateSelection, SmoothingResult, TIME_EPS};
use smooth_mpeg::GopPattern;
use smooth_trace::VideoTrace;

/// The pre-PR per-picture decision loop, verbatim: one scalar
/// `sum / dl`, `sum / du` pair per lookahead step with running
/// max/min intersection. [`crate::smoother`]'s production `decide_one`
/// computes the identical IEEE divisions in blocked form (so the
/// backend can pack them two-per-`divpd`); the `incremental_props`
/// proptests hold the two bit-identical.
pub(crate) fn decide_one_reference(ctx: &DecideCtx<'_>) -> PictureSchedule {
    let tau = ctx.params.tau;
    let d_bound = ctx.params.delay_bound;
    let k = ctx.params.k;
    let i = ctx.i;

    // t_i := max(d_{i-1}, (i + K) * tau)    {paper eq. 2, via start_time}
    let time = ctx.start;

    // Inner loop: intersect [r_L(h), r_U(h)] for h = 0..H-1.
    let mut sum = 0.0f64;
    let mut lower = 0.0f64;
    let mut upper = f64::INFINITY;
    let mut lower_old = 0.0f64;
    let mut upper_old = f64::INFINITY;
    let mut lower0 = 0.0f64;
    let mut upper0 = f64::INFINITY;
    let mut h = 0usize;
    let mut crossed = false;
    while h < ctx.sizes_ahead.len() {
        sum += ctx.sizes_ahead[h];
        lower_old = lower;
        upper_old = upper;
        // r_L(h): delay-bound constraint (paper eq. 12).
        let dl = d_bound + (i + h) as f64 * tau - time;
        let new_lower = if dl > 0.0 { sum / dl } else { f64::INFINITY };
        // r_U(h): continuous-service constraint (paper eq. 13).
        let du = (i + h + k + 1) as f64 * tau - time;
        let new_upper = if du > 0.0 { sum / du } else { f64::INFINITY };
        lower = lower.max(new_lower);
        upper = upper.min(new_upper);
        if h == 0 {
            lower0 = new_lower;
            upper0 = new_upper;
        }
        h += 1;
        if lower > upper {
            crossed = true;
            break;
        }
    }

    crate::smoother::finish_decision(
        ctx, time, sum, lower, upper, lower_old, upper_old, lower0, upper0, h, crossed,
    )
}

/// Fills `scratch` with the lookahead window `S_i .. S_{i+look−1}`:
/// exact sizes for the arrived prefix, `estimate(j)` beyond it.
///
/// This is the naive resolution the incremental window replaced: every
/// picture pays O(`look`) work and one estimator call per unresolved slot.
pub fn fill_lookahead(
    scratch: &mut Vec<f64>,
    i: usize,
    look: usize,
    visible: &[u64],
    mut estimate: impl FnMut(usize) -> f64,
) {
    scratch.clear();
    for j in i..i + look {
        scratch.push(if j < visible.len() {
            visible[j] as f64
        } else {
            estimate(j)
        });
    }
}

/// The paper's `S_j ≈ S_{j−N}` estimate as literally written: walk back
/// one pattern at a time (`j−N, j−2N, …`) until an arrived picture is
/// found, else the per-type default.
///
/// [`PatternEstimator::estimate`] computes the same value in closed form;
/// the `estimator_closed_form_equals_walk_back` proptest holds them equal.
pub fn walk_back_estimate(
    defaults: &DefaultSizes,
    j: usize,
    arrived: &[u64],
    pattern: &GopPattern,
) -> f64 {
    let n = pattern.n();
    let mut back = j;
    while back >= n {
        back -= n;
        if back < arrived.len() {
            return arrived[back] as f64;
        }
    }
    defaults.for_type(pattern.type_at(j))
}

/// [`SizeEstimator`] wrapper around [`walk_back_estimate`]. Keeps the
/// conservative default invalidation contract, so it is safe (if slow)
/// anywhere an estimator is accepted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferencePatternEstimator {
    /// Cold-start defaults (the paper's §4.4 values by default).
    pub defaults: DefaultSizes,
}

impl Default for ReferencePatternEstimator {
    fn default() -> Self {
        ReferencePatternEstimator {
            defaults: DefaultSizes::PAPER,
        }
    }
}

impl SizeEstimator for ReferencePatternEstimator {
    fn estimate(&self, j: usize, arrived: &[u64], pattern: &GopPattern) -> f64 {
        walk_back_estimate(&self.defaults, j, arrived, pattern)
    }

    fn name(&self) -> &'static str {
        "pattern-walk-back"
    }
}

/// The pre-engine offline smoother: per-picture [`fill_lookahead`] refill,
/// otherwise identical to [`crate::Smoother::run`]. The determinism suites
/// assert bit-identical output against the window-engine smoother.
pub fn smooth_reference_with(
    trace: &VideoTrace,
    params: SmootherParams,
    estimator: &dyn SizeEstimator,
    selection: RateSelection,
) -> SmoothingResult {
    let tau = params.tau;
    let k = params.k;
    let n_total = trace.len();
    let sizes = &trace.sizes;
    let pattern = trace.pattern;
    let pattern_n = pattern.n();
    let mut sizes_ahead: Vec<f64> = Vec::with_capacity(params.h);

    let mut schedule = Vec::with_capacity(n_total);
    let mut depart = 0.0f64;
    let mut prev_rate: Option<f64> = None;

    for i in 0..n_total {
        let time = params.start_time(i, depart);

        // Pictures fully arrived by `time`: j with (j+1)τ ≤ time.
        let arrived_by_time = (((time + TIME_EPS) / tau).floor() as usize).min(n_total);
        let arrived = arrived_by_time.max((i + k).min(n_total));

        let visible = &sizes[..arrived];
        fill_lookahead(
            &mut sizes_ahead,
            i,
            params.h.min(n_total - i),
            visible,
            |j| estimator.estimate(j, visible, &pattern),
        );
        let decision = decide_one_reference(&DecideCtx {
            params: &params,
            sizes_ahead: &sizes_ahead,
            pattern_n,
            selection,
            i,
            start: time,
            prev_rate,
            size_i: sizes[i],
            exact_prefix: false,
        });
        depart = decision.depart;
        prev_rate = Some(decision.rate);
        schedule.push(decision);
    }

    SmoothingResult { params, schedule }
}

/// [`smooth_reference_with`] with the paper's defaults — the oracle for
/// [`crate::smooth`].
pub fn smooth_reference(trace: &VideoTrace, params: SmootherParams) -> SmoothingResult {
    let estimator = PatternEstimator::default();
    smooth_reference_with(trace, params, &estimator, RateSelection::Basic)
}

/// The pre-engine *live* streaming path: mirrors
/// [`crate::online::OnlineSmoother`]'s drain loop with unknown sequence
/// length (decisions for the last `H − 1` pictures may use estimates past
/// the end), resolving lookahead with the naive [`fill_lookahead`].
pub fn smooth_live_reference(
    trace: &VideoTrace,
    params: SmootherParams,
    estimator: &dyn SizeEstimator,
    selection: RateSelection,
) -> SmoothingResult {
    let tau = params.tau;
    let k = params.k;
    let pattern = trace.pattern;
    let total = trace.len();

    let mut arrived: Vec<u64> = Vec::with_capacity(total);
    let mut schedule = Vec::with_capacity(total);
    let mut sizes_ahead: Vec<f64> = Vec::with_capacity(params.h);
    let mut decided = 0usize;
    let mut depart = 0.0f64;
    let mut prev_rate: Option<f64> = None;

    // Steps 0..total are pushes; the final step is `finish()`.
    for step in 0..=total {
        let ended = step == total;
        if !ended {
            arrived.push(trace.sizes[step]);
        }
        let n_known: Option<usize> = if ended { Some(arrived.len()) } else { None };
        loop {
            let i = decided;
            if let Some(n) = n_known {
                if i >= n {
                    break;
                }
            }
            let time = params.start_time(i, depart);
            let arrived_by_time = ((time + TIME_EPS) / tau).floor() as usize;
            let mut need = arrived_by_time.max(i + k).max(i + 1);
            if let Some(n) = n_known {
                need = need.min(n.max(i + 1));
            }
            if arrived.len() < need && !ended {
                break;
            }
            if arrived.len() <= i {
                break;
            }
            let visible_len = need.min(arrived.len());
            let visible = &arrived[..visible_len];
            let look = match n_known {
                Some(n) => params.h.min(n - i),
                None => params.h,
            };
            fill_lookahead(&mut sizes_ahead, i, look, visible, |j| {
                estimator.estimate(j, visible, &pattern)
            });
            let decision = decide_one_reference(&DecideCtx {
                params: &params,
                sizes_ahead: &sizes_ahead,
                pattern_n: pattern.n(),
                selection,
                i,
                start: time,
                prev_rate,
                size_i: arrived[i],
                exact_prefix: false,
            });
            depart = decision.depart;
            prev_rate = Some(decision.rate);
            decided += 1;
            schedule.push(decision);
        }
    }

    SmoothingResult { params, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoother::smooth;
    use smooth_mpeg::{PictureType, Resolution};

    fn noisy_trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000 + (i as u64 * 31) % 60_000,
                PictureType::P => 80_000 + (i as u64 * 17) % 30_000,
                PictureType::B => 16_000 + (i as u64 * 7) % 9_000,
            })
            .collect();
        VideoTrace::new("ref", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn reference_matches_engine_smoother() {
        let trace = noisy_trace(120);
        for (d, k, h) in [(0.1, 1, 9), (0.2, 1, 9), (0.2, 3, 18), (0.4, 9, 9)] {
            let p = SmootherParams::at_30fps(d, k, h).unwrap();
            assert_eq!(
                smooth_reference(&trace, p),
                smooth(&trace, p),
                "D={d} K={k} H={h}"
            );
        }
    }

    #[test]
    fn walk_back_equals_closed_form_on_samples() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let est = PatternEstimator::default();
        let arrived: Vec<u64> = (0..25).map(|x| 500 + 13 * x).collect();
        for j in 0..80 {
            for take in [0usize, 1, 5, 9, 24, 25] {
                let pre = &arrived[..take];
                assert_eq!(
                    walk_back_estimate(&est.defaults, j, pre, &pattern),
                    est.estimate(j, pre, &pattern),
                    "j={j} take={take}"
                );
            }
        }
    }
}
