//! Receiver-side (decoder buffer) analysis.
//!
//! The paper's sender-side guarantee has a direct client-side dual. The
//! decoder starts displaying pictures a fixed *playback offset* `P` after
//! capture time zero, consuming picture `i`'s bits at its decode instant
//! `P + i·τ`. Because the smoother guarantees `d_i ≤ i·τ + D` (Theorem 1,
//! delay measured from capture), choosing `P ≥ max_i delay_i` — and `P = D`
//! always suffices — means every picture has fully arrived when the
//! decoder needs it: **no decoder-buffer underflow, ever**.
//!
//! This module makes that dual concrete: it simulates the receiver buffer
//! against a transmission schedule, finds the minimal feasible playback
//! offset (it equals the maximum per-picture delay), and sizes the client
//! buffer (the MPEG "model decoder"/VBV concern of §3.1, transplanted to
//! the network receiver).

use crate::smoother::SmoothingResult;
use serde::{Deserialize, Serialize};

/// Outcome of a receiver simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiverReport {
    /// Playback offset used (seconds from capture of picture 0's first
    /// bit to its decode instant).
    pub playback_offset: f64,
    /// Pictures whose bits had not fully arrived at their decode instant.
    pub underflows: usize,
    /// Largest buffer occupancy observed, in bits (the client buffer a
    /// set-top box must provision).
    pub max_buffer_bits: f64,
    /// Occupancy just before each decode instant, in bits (display
    /// order) — the decoder's working margin.
    pub occupancy_before_decode: Vec<f64>,
}

/// The smallest playback offset with no underflow for this schedule:
/// exactly the maximum per-picture delay (each picture `i` finishes
/// arriving at `d_i = i·τ + delay_i`; the decode instant `P + i·τ` must
/// not precede it).
pub fn min_playback_offset(result: &SmoothingResult) -> f64 {
    result.max_delay()
}

/// Simulates the receiver buffer for `result`'s transmission schedule at
/// the given playback offset.
///
/// Bits arrive continuously at the scheduled rates (zero network delay —
/// a constant network delay just shifts `playback_offset`); picture `i`'s
/// bits are removed instantaneously at `playback_offset + i·τ`.
pub fn simulate_receiver(result: &SmoothingResult, playback_offset: f64) -> ReceiverReport {
    let tau = result.params.tau;
    let schedule = &result.schedule;
    let n = schedule.len();

    // Cumulative bits received by time t: piecewise linear with
    // breakpoints at picture starts/departures.
    // received(t) for t in [start_i, depart_i): prefix(i) + rate_i*(t-start_i).
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    for p in schedule {
        let bits = (p.depart - p.start) * p.rate;
        prefix.push(prefix.last().expect("non-empty") + bits);
    }
    let received_at = |t: f64| -> f64 {
        // Binary search over departure times.
        let idx = schedule.partition_point(|p| p.depart <= t);
        if idx >= n {
            return prefix[n];
        }
        let p = &schedule[idx];
        if t <= p.start {
            prefix[idx]
        } else {
            prefix[idx] + p.rate * (t - p.start)
        }
    };

    let mut underflows = 0usize;
    let mut max_buffer = 0.0f64;
    let mut occupancy_before_decode = Vec::with_capacity(n);
    let mut consumed = 0.0f64;

    // Candidate maxima: occupancy grows while receiving and drops at
    // decode instants, so the maximum over time is attained just before
    // some decode instant or at the final departure. Evaluate both.
    for (i, _) in schedule.iter().enumerate() {
        let decode_t = playback_offset + i as f64 * tau;
        let have = received_at(decode_t) - consumed;
        occupancy_before_decode.push(have);
        max_buffer = max_buffer.max(have);
        let need = prefix[i + 1] - prefix[i];
        if have + 1e-6 < need {
            underflows += 1;
        }
        consumed += need;
    }
    // Just after the last departure, everything not yet decoded sits in
    // the buffer.
    if let Some(last) = schedule.last() {
        let decoded_by = ((last.depart - playback_offset) / tau)
            .floor()
            .max(0.0)
            .min(n as f64);
        let consumed_at_depart: f64 = prefix[decoded_by as usize];
        max_buffer = max_buffer.max(prefix[n] - consumed_at_depart);
    }

    ReceiverReport {
        playback_offset,
        underflows,
        max_buffer_bits: max_buffer,
        occupancy_before_decode,
    }
}

/// Client buffer requirement at the safe offset `P = D`: the provisioning
/// number a receiver implementer needs.
pub fn client_buffer_at_bound(result: &SmoothingResult) -> f64 {
    simulate_receiver(result, result.params.delay_bound).max_buffer_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SmootherParams;
    use crate::smoother::smooth;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};
    use smooth_trace::VideoTrace;

    const TAU: f64 = 1.0 / 30.0;

    fn trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 200_000,
                PictureType::P => 100_000,
                PictureType::B => 20_000,
            })
            .collect();
        VideoTrace::new("rx", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn offset_d_never_underflows() {
        let t = trace(90);
        for d in [0.1, 0.2, 0.3] {
            let r = smooth(&t, SmootherParams::at_30fps(d, 1, 9).unwrap());
            let report = simulate_receiver(&r, d);
            assert_eq!(report.underflows, 0, "D={d}");
        }
    }

    #[test]
    fn min_offset_equals_max_delay_and_is_tight() {
        let t = trace(90);
        let r = smooth(&t, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        let p_min = min_playback_offset(&r);
        assert!((p_min - r.max_delay()).abs() < 1e-12);
        // At the minimal offset: no underflow.
        assert_eq!(simulate_receiver(&r, p_min).underflows, 0);
        // Slightly below: at least one underflow (tightness).
        assert!(simulate_receiver(&r, p_min - 1e-3).underflows > 0);
    }

    #[test]
    fn occupancy_is_per_picture_and_nonnegative_at_safe_offset() {
        let t = trace(45);
        let r = smooth(&t, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        let report = simulate_receiver(&r, 0.2);
        assert_eq!(report.occupancy_before_decode.len(), 45);
        for (i, &occ) in report.occupancy_before_decode.iter().enumerate() {
            assert!(
                occ >= t.sizes[i] as f64 - 1e-3,
                "picture {i} not fully buffered"
            );
        }
    }

    #[test]
    fn buffer_requirement_grows_with_d() {
        // A larger delay bound lets the sender run further ahead of the
        // decoder, so the client must buffer more.
        let t = trace(180);
        let b = |d: f64| {
            let r = smooth(&t, SmootherParams::at_30fps(d, 1, 9).unwrap());
            client_buffer_at_bound(&r)
        };
        assert!(b(0.1) <= b(0.2) + 1.0);
        assert!(b(0.2) <= b(0.4) + 1.0);
    }

    #[test]
    fn buffer_bounded_by_peak_rate_times_offset() {
        // Occupancy can never exceed what the link can deliver in the
        // decoder's head start plus one pattern of slack.
        let t = trace(90);
        let d = 0.2;
        let r = smooth(&t, SmootherParams::at_30fps(d, 1, 9).unwrap());
        let peak = r.rates().fold(0.0f64, f64::max);
        let report = simulate_receiver(&r, d);
        assert!(
            report.max_buffer_bits <= peak * (d + 9.0 * TAU),
            "buffer {} vs cap {}",
            report.max_buffer_bits,
            peak * (d + 9.0 * TAU)
        );
    }

    #[test]
    fn huge_offset_buffers_everything() {
        let t = trace(45);
        let r = smooth(&t, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        let report = simulate_receiver(&r, 10.0);
        assert_eq!(report.underflows, 0);
        // With decode starting after all departures, the whole stream is
        // buffered at its peak.
        assert!((report.max_buffer_bits - t.total_bits() as f64).abs() < 1.0);
    }

    #[test]
    fn empty_schedule() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let t = VideoTrace {
            name: "e".into(),
            pattern,
            resolution: Resolution::VGA,
            fps: 30.0,
            sizes: vec![],
        };
        let r = smooth(&t, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        let report = simulate_receiver(&r, 0.2);
        assert_eq!(report.underflows, 0);
        assert_eq!(report.max_buffer_bits, 0.0);
    }
}
