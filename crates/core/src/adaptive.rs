//! Smoothing video with a time-varying GOP pattern (paper §4.4's
//! adaptive-encoder remark, implemented).
//!
//! Two things change relative to the fixed-pattern smoother, and only
//! two — exactly as the paper observes ("the basic algorithm does not
//! depend on M, and it uses N only in picture size estimation"):
//!
//! 1. **Size estimation.** `S_j ≈ S_{j−N}` assumes pictures one period
//!    apart share a type; with a changing pattern the natural
//!    generalization is *the most recent arrived picture of the same
//!    type*, which degenerates to the paper's rule when the pattern is
//!    constant (the nearest same-type predecessor of an I at distance N
//!    is the previous I, etc. — for P/B slots it may find a nearer
//!    same-type picture, which is a strictly fresher sample).
//! 2. **The moving-average divisor** uses the `N` in force at picture `i`.
//!
//! Theorem 1 is untouched: it never depended on the pattern at all.

use crate::estimate::{DefaultSizes, Invalidation};
use crate::lookahead::LookaheadWindow;
use crate::params::SmootherParams;
use crate::smoother::{
    decide_one, BlockLanes, DecideCtx, RateSelection, SmoothingResult, TIME_EPS,
};
use smooth_mpeg::PatternSchedule;
use smooth_trace::adaptive::AdaptiveVideo;

/// Estimates `S_j` as the size of the most recent arrived picture of the
/// same type under `schedule`, falling back to the paper's per-type
/// defaults when no such picture has arrived.
pub fn same_type_estimate(
    schedule: &PatternSchedule,
    defaults: &DefaultSizes,
    j: usize,
    arrived: &[u64],
) -> f64 {
    let target = schedule.type_at(j);
    let upto = arrived.len().min(j);
    for x in (0..upto).rev() {
        if schedule.type_at(x) == target {
            return arrived[x] as f64;
        }
    }
    defaults.for_type(target)
}

/// Runs the smoothing algorithm over an adaptive-pattern video.
pub fn smooth_adaptive(
    video: &AdaptiveVideo,
    params: SmootherParams,
    selection: RateSelection,
) -> SmoothingResult {
    let tau = params.tau;
    let k = params.k;
    let n_total = video.len();
    let sizes = &video.sizes;
    let defaults = DefaultSizes::PAPER;

    let mut schedule = Vec::with_capacity(n_total);
    let mut depart = 0.0f64;
    let mut prev_rate: Option<f64> = None;
    // The nearest-same-type estimate can change on *any* arrival (the new
    // picture may be a closer same-type sample for every unresolved slot),
    // so the window runs under the conservative invalidation contract.
    let mut window = LookaheadWindow::new();
    let mut lanes = BlockLanes::default();

    for i in 0..n_total {
        let time = params.start_time(i, depart);
        let arrived_by_time = (((time + TIME_EPS) / tau).floor() as usize).min(n_total);
        let arrived = arrived_by_time.max((i + k).min(n_total));

        let visible = &sizes[..arrived];
        let sizes_ahead = window.advance(
            i,
            params.h.min(n_total - i),
            visible,
            Invalidation::OnAnyArrival,
            video.schedule.n_at(i),
            |j| same_type_estimate(&video.schedule, &defaults, j, visible),
        );
        let ctx = DecideCtx {
            params: &params,
            sizes_ahead,
            pattern_n: video.schedule.n_at(i),
            selection,
            i,
            start: time,
            prev_rate,
            size_i: sizes[i],
            exact_prefix: false,
        };
        let decision = decide_one(&ctx, &mut lanes);
        depart = decision.depart;
        prev_rate = Some(decision.rate);
        schedule.push(decision);
    }

    SmoothingResult { params, schedule }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_theorem1;
    use smooth_mpeg::{GopPattern, PatternSegment, PictureType};
    use smooth_trace::adaptive::adaptive_driving;

    #[test]
    fn theorem1_holds_on_adaptive_video() {
        let video = adaptive_driving();
        for (d, k) in [(0.1, 1), (0.2, 1), (0.2, 3), (0.4, 9)] {
            let params = SmootherParams::at_30fps(d, k, 9).expect("feasible");
            let result = smooth_adaptive(&video, params, RateSelection::Basic);
            let report = check_theorem1(&result);
            assert!(report.holds(), "D={d} K={k}: {report:?}");
        }
    }

    #[test]
    fn moving_average_uses_local_n() {
        let video = adaptive_driving();
        let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");
        let result = smooth_adaptive(&video, params, RateSelection::MovingAverage);
        assert!(check_theorem1(&result).holds());
    }

    #[test]
    fn same_type_estimate_finds_nearest_match() {
        let schedule = PatternSchedule::new(vec![
            PatternSegment {
                pictures: 18,
                pattern: GopPattern::new(3, 9).unwrap(),
            },
            PatternSegment {
                pictures: 12,
                pattern: GopPattern::new(2, 6).unwrap(),
            },
        ])
        .unwrap();
        let defaults = DefaultSizes::PAPER;
        // Arrived: pictures 0..20 with size = 1000 + index.
        let arrived: Vec<u64> = (0..20).map(|x| 1000 + x as u64).collect();
        // Picture 24 is an I (18 + 6): nearest arrived I is 18.
        assert_eq!(schedule.type_at(24), PictureType::I);
        assert_eq!(
            same_type_estimate(&schedule, &defaults, 24, &arrived),
            1018.0
        );
        // Picture 22 is a P of the (2,6) segment: nearest arrived P...
        assert_eq!(schedule.type_at(22), PictureType::P);
        // indices 18..20 are I(18), B(19); so the nearest P is in the
        // first segment: 15 (15 % 9 == 6 -> P).
        assert_eq!(
            same_type_estimate(&schedule, &defaults, 22, &arrived),
            1015.0
        );
    }

    #[test]
    fn same_type_estimate_cold_start_defaults() {
        let schedule = PatternSchedule::constant(GopPattern::new(3, 9).unwrap());
        let defaults = DefaultSizes::PAPER;
        assert_eq!(same_type_estimate(&schedule, &defaults, 0, &[]), 200_000.0);
        assert_eq!(same_type_estimate(&schedule, &defaults, 3, &[]), 100_000.0);
        assert_eq!(same_type_estimate(&schedule, &defaults, 1, &[]), 20_000.0);
    }

    #[test]
    fn adaptive_estimation_beats_wrong_fixed_pattern() {
        // Smoothing the adaptive video while pretending its pattern is a
        // constant (2,6): types are misclassified after the first switch,
        // so estimates are worse and the schedule is less smooth. The
        // schedule-aware smoother must do at least as well on the paper's
        // area-difference proxy: SD of rates (area difference needs an
        // ideal reference, ill-defined across pattern switches).
        let video = adaptive_driving();
        let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");

        let aware = smooth_adaptive(&video, params, RateSelection::Basic);

        // Naive: wrap the sizes in a fixed-pattern trace and use the
        // standard smoother.
        let naive_trace = smooth_trace::VideoTrace::new(
            "naive",
            GopPattern::new(2, 6).unwrap(),
            video.resolution,
            video.fps,
            video.sizes.clone(),
        )
        .unwrap();
        let naive = crate::smoother::smooth(&naive_trace, params);

        // Both satisfy Theorem 1 regardless.
        assert!(check_theorem1(&aware).holds());
        assert!(check_theorem1(&naive).holds());

        let sd = |r: &SmoothingResult| {
            let rates: Vec<f64> = r.rates().collect();
            let m = rates.iter().sum::<f64>() / rates.len() as f64;
            (rates.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / rates.len() as f64).sqrt()
        };
        assert!(
            sd(&aware) <= sd(&naive) * 1.05,
            "schedule-aware smoothing should not be rougher: {} vs {}",
            sd(&aware),
            sd(&naive)
        );
    }

    #[test]
    fn degenerates_to_fixed_pattern_behaviour() {
        // A constant schedule must give the same *guarantees* and nearly
        // the same schedule as the standard smoother (the estimator
        // differs: same-type-nearest vs one-pattern-back, both exact on a
        // periodic trace).
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..90)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 200_000,
                PictureType::P => 100_000,
                PictureType::B => 20_000,
            })
            .collect();
        let video = AdaptiveVideo {
            name: "const".into(),
            schedule: PatternSchedule::constant(pattern),
            resolution: smooth_mpeg::Resolution::VGA,
            fps: 30.0,
            sizes: sizes.clone(),
        };
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        let adaptive = smooth_adaptive(&video, params, RateSelection::Basic);

        let trace = smooth_trace::VideoTrace::new(
            "const",
            pattern,
            smooth_mpeg::Resolution::VGA,
            30.0,
            sizes,
        )
        .unwrap();
        let fixed = crate::smoother::smooth(&trace, params);

        // On a perfectly periodic trace both estimators return the exact
        // sizes, so the schedules agree exactly.
        assert_eq!(adaptive.schedule, fixed.schedule);
    }
}
