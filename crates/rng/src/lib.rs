//! Self-contained deterministic pseudo-random number generation.
//!
//! The evaluation of the smoothing algorithm must be **bit-reproducible**:
//! the four synthetic video sequences (see `smooth-trace`) stand in for the
//! paper's MPEG encodes, and every figure in EXPERIMENTS.md is regenerated
//! from them. Pinning the generator implementation here (rather than
//! depending on `rand`, whose stream semantics may change across major
//! versions) guarantees that a given seed produces the same trace forever.
//!
//! The generator is [xoshiro256**], seeded via [SplitMix64] exactly as its
//! authors recommend. Both algorithms are public domain.
//!
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use smooth_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream:
//! assert_eq!(Rng::seed_from_u64(42).next_u64(), Rng::seed_from_u64(42).next_u64());
//! ```

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion; also usable on its own as a fast, weak PRNG.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
///
/// Not cryptographically secure — this is a simulation PRNG with a 2^256 − 1
/// period and excellent statistical quality for Monte Carlo use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    ///
    /// A zero seed is fine: SplitMix64 expansion never yields the all-zero
    /// state that xoshiro cannot escape.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the standard bit-to-double recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire 2019: unbiased bounded integers without division in the
        // common path.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a standard normal variate (mean 0, variance 1) via the
    /// Box–Muller transform.
    ///
    /// One of the two Box–Muller outputs is discarded so the generator
    /// stays a pure function of the consumed stream position.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a lognormal variate: `exp(mu + sigma * N(0,1))`.
    ///
    /// With `mu = 0` and small `sigma` this is a multiplicative noise
    /// factor centred near 1 — exactly what the synthetic encoder uses
    /// for picture-size jitter.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Forks an independent generator, keyed by `stream`.
    ///
    /// Deterministic: the child depends only on the parent's current state
    /// and the `stream` label, so distinct subsystems (e.g. each video
    /// source in the multiplexer experiment) can draw independent streams
    /// without coordinating consumption order.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut seed = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        Rng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, cross-checked against the reference C
        // implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(123);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(123);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::seed_from_u64(0);
        assert_ne!(r.next_u64(), 0, "state must not be stuck at zero");
        assert_ne!(r.s, [0; 4]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.range_f64(-3.0, 5.5);
            assert!((-3.0..5.5).contains(&x));
        }
    }

    #[test]
    fn range_degenerate_is_constant() {
        let mut r = Rng::seed_from_u64(9);
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn range_rejects_inverted_bounds() {
        Rng::seed_from_u64(0).range_f64(1.0, 0.0);
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_centred() {
        let mut r = Rng::seed_from_u64(17);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.lognormal(0.0, 0.1);
            assert!(x > 0.0);
            sum += x;
        }
        // E[lognormal(0, sigma)] = exp(sigma^2 / 2) ≈ 1.005 for sigma = 0.1.
        let mean = sum / n as f64;
        assert!((mean - 1.005).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::seed_from_u64(99);
        let mut parent2 = Rng::seed_from_u64(99);
        let mut a = parent1.fork(1);
        let mut a2 = parent2.fork(1);
        // Same parent state + same stream label => same child stream.
        for _ in 0..16 {
            assert_eq!(a.next_u64(), a2.next_u64());
        }
        // Different stream labels => different streams.
        let mut parent3 = Rng::seed_from_u64(99);
        let mut b = parent3.fork(2);
        let mut a3 = Rng::seed_from_u64(99).fork(1);
        let same = (0..32).filter(|_| a3.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut r = Rng::seed_from_u64(5);
        r.next_u64();
        let mut c = r.clone();
        assert_eq!(r.next_u64(), c.next_u64());
    }
}
